//! Adversarial end-to-end acceptance: each `skm_data::hostile` stream is
//! fed through a real server over TCP (with strict queries interleaved
//! mid-stream) and the served clustering must land in the same cost
//! envelope as an in-process `ShardedStream` run at the same
//! `(seed, shards, batch)` — plus stay finite, answer windowed reads with
//! honest coverage, and keep its point accounting exact.
//!
//! The PR 3 OnlineCC duplicate-fallback bug is the archetype this suite
//! exists for: a degenerate stream shape silently knocking a hot path into
//! a pathological regime. Every generator here encodes one such shape.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::PointSet;
use skm_data::hostile;
use skm_serve::prelude::*;
use skm_stream::{ShardedStream, StreamingClusterer};
use std::sync::Arc;

const K: usize = 4;
const SHARDS: usize = 2;
const BATCH: usize = 64;
const SEED: u64 = 42;

/// Additive slack for the cost envelope: the degenerate streams
/// (duplicates, near-zero variance) drive both costs to ~0, where a purely
/// multiplicative envelope is meaningless.
const COST_EPS: f64 = 1e-6;

fn config() -> StreamConfig {
    StreamConfig::new(K)
        .with_bucket_size(20 * K)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5)
}

fn cost_on(points: &[Vec<f64>], centers: &[Vec<f64>]) -> f64 {
    let mut set = PointSet::new(points[0].len());
    for p in points {
        set.push(p, 1.0);
    }
    let centers = skm_clustering::Centers::from_rows(points[0].len(), centers).unwrap();
    kmeans_cost(&set, &centers).unwrap()
}

/// Streams `points` through a fresh server on one connection (strict
/// queries interleaved every 16 batches), then checks the final served
/// clustering against the in-process reference envelope and the windowed
/// read path.
fn assert_serves_within_envelope(name: &str, points: &[Vec<f64>]) {
    let n = points.len() as u64;

    // In-process reference at the same (seed, shards, batch).
    let mut local = ShardedStream::cc(config(), SHARDS, BATCH, SEED).unwrap();
    for p in points {
        local.update(p).unwrap();
    }
    let local_cost = cost_on(points, &local.query().unwrap().to_rows());
    assert!(local_cost.is_finite(), "{name}: in-process cost not finite");

    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine), None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for (i, chunk) in points.chunks(BATCH).enumerate() {
        match client.ingest_batch(chunk.to_vec()).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("{name}: ingest refused mid-stream: {other:?}"),
        }
        // Interleaved strict reads: the hostile shape must not wedge the
        // query path while ingestion is live.
        if i % 8 == 7 {
            match client.query_opts(&RequestOptions::strict()).unwrap() {
                Response::Centers { centers, cost, .. } => {
                    assert_eq!(centers.len(), K, "{name}: mid-stream k wrong");
                    assert!(cost.is_finite(), "{name}: mid-stream cost not finite");
                }
                other => panic!("{name}: mid-stream query failed: {other:?}"),
            }
        }
    }

    let served_centers = match client.query_opts(&RequestOptions::strict()).unwrap() {
        Response::Centers { centers, cost, .. } => {
            assert!(cost.is_finite(), "{name}: served cost not finite");
            centers
        }
        other => panic!("{name}: final query failed: {other:?}"),
    };
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, n, "{name}: point accounting drifted");
    assert_eq!(
        stats.per_shard_points.iter().sum::<u64>(),
        n,
        "{name}: shards lost points"
    );

    // A windowed strict read over the hostile stream: coverage must stay
    // honest (at least the request, never beyond the stream).
    let window = (n / 4).max(1);
    match client
        .query_opts(&RequestOptions::strict().with_window(WindowSpec::points(window)))
        .unwrap()
    {
        Response::Centers { window: info, .. } => {
            let info = info.unwrap_or_else(|| panic!("{name}: windowed read lost its window"));
            assert_eq!(info.last_points, window, "{name}");
            assert!(
                info.covered_points >= window && info.covered_points <= n,
                "{name}: coverage {} for window {window} over {n} points",
                info.covered_points
            );
        }
        other => panic!("{name}: windowed query failed: {other:?}"),
    }

    client.shutdown().unwrap();
    handle.shutdown().unwrap();

    // Same algorithm, same parameters, same single-connection arrival
    // order: the served cost must sit in the in-process envelope (generous
    // against k-means++ seeding noise, additive slack for ~0-cost
    // degenerate streams).
    let served_cost = cost_on(points, &served_centers);
    assert!(
        served_cost <= 2.0 * local_cost + COST_EPS && local_cost <= 2.0 * served_cost + COST_EPS,
        "{name}: served cost {served_cost:.4e} vs in-process {local_cost:.4e} out of envelope"
    );
}

fn rows(d: &skm_data::Dataset) -> Vec<Vec<f64>> {
    d.stream().map(<[f64]>::to_vec).collect()
}

#[test]
fn heavy_duplicate_streams_serve_within_the_cost_envelope() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let data = hostile::heavy_duplicates(2_000, 8, 4, &mut rng);
    assert_serves_within_envelope("heavy_duplicates", &rows(&data));
}

#[test]
fn near_zero_variance_streams_serve_within_the_cost_envelope() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    let data = hostile::near_zero_variance(1_500, K, 8, &mut rng);
    assert_serves_within_envelope("near_zero_variance", &rows(&data));
}

#[test]
fn dimension_hot_outlier_streams_serve_within_the_cost_envelope() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    let data = hostile::dimension_hot_outliers(1_500, 16, 50, 1e6, &mut rng);
    assert_serves_within_envelope("dimension_hot_outliers", &rows(&data));
}

#[test]
fn adversarially_ordered_streams_serve_within_the_cost_envelope() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    let data = hostile::adversarial_order(2_000, K, 4, &mut rng);
    assert_serves_within_envelope("adversarial_order", &rows(&data));
}

#[test]
fn high_dim_streams_serve_within_the_cost_envelope() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    let data = hostile::high_dim(800, K, 256, &mut rng);
    assert_eq!(data.dim(), 256);
    assert_serves_within_envelope("high_dim", &rows(&data));
}

/// The PR 3 regression, restated as observable wire behavior: on a
/// duplicate-heavy stream, repeated strict reads with no intervening
/// ingest must reuse the cached coreset — `used_cache` true, a single
/// cached input instead of an every-level tree merge, and a candidate set
/// that does not grow — rather than rebuilding per query. (Each strict
/// read still runs k-means over the candidates; the churn the cache
/// prevents is the per-query coreset reconstruction.) Cached reads must
/// not advance the published epoch at all.
#[test]
fn duplicate_heavy_streams_cause_no_per_query_rebuild_churn() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    let data = rows(&hostile::heavy_duplicates(2_000, 4, 3, &mut rng));

    let config = StreamConfig::new(2)
        .with_bucket_size(40)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    // The single-stream CC backend: the coreset-caching structure OnlineCC
    // wraps, and the one whose per-query cache behavior stats expose.
    let engine = Arc::new(
        Engine::new(&EngineSpec {
            kind: BackendKind::Cc,
            stream: config,
            shards: 1,
            batch: 1,
            nesting_depth: 2,
            seed: 17,
        })
        .unwrap(),
    );
    let handle = Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for chunk in data.chunks(100) {
        client.ingest_batch(chunk.to_vec()).unwrap();
    }

    // First strict read pays for its clustering and seeds the coreset
    // cache.
    let (first, baseline_candidates) = match client.query_opts(&RequestOptions::strict()).unwrap() {
        Response::Centers { epoch, stats, .. } => (epoch, stats.candidate_points),
        other => panic!("first strict query failed: {other:?}"),
    };

    // Repeated strict reads on the unchanged duplicate-heavy stream: the
    // cached coreset is reused outright. The stats request is strict too,
    // so `last_query` is exact.
    for round in 0..5 {
        match client.query_opts(&RequestOptions::strict()).unwrap() {
            Response::Centers { .. } => {}
            other => panic!("strict query {round} failed: {other:?}"),
        }
        let stats = client.stats_opts(&RequestOptions::strict()).unwrap();
        let last = stats.last_query.expect("strict query must record stats");
        assert!(
            last.used_cache,
            "round {round}: duplicate-heavy stream rebuilt instead of using the cache"
        );
        assert!(
            last.coresets_merged <= 2,
            "round {round}: repeated query re-merged {} coresets instead of \
             reusing the cached [1, N] entry",
            last.coresets_merged
        );
        assert!(
            last.candidate_points <= baseline_candidates,
            "round {round}: candidate set grew {} -> {} on an unchanged stream",
            baseline_candidates,
            last.candidate_points
        );
    }

    // Cached reads serve the published answer without publishing: the
    // epoch observed by a later cached read cannot run ahead of the last
    // strict one.
    let strict_epoch = match client.query_opts(&RequestOptions::strict()).unwrap() {
        Response::Centers { epoch, .. } => epoch,
        other => panic!("strict query failed: {other:?}"),
    };
    assert!(strict_epoch >= first);
    for _ in 0..3 {
        match client.query_opts(&RequestOptions::cached()).unwrap() {
            Response::Centers { epoch, .. } => assert_eq!(
                epoch, strict_epoch,
                "a cached read advanced the published epoch"
            ),
            other => panic!("cached query failed: {other:?}"),
        }
    }

    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}
