//! TCP end-to-end acceptance for follower replicas: a second server tails
//! a WAL-enabled primary over the wire, applies the stream, and serves
//! cached reads that converge — bit-identically — to the primary's
//! published answers within the lag bound, while refusing everything a
//! follower must refuse.

use skm_serve::engine::WalConfig;
use skm_serve::follower::{start_follower, FollowerSpec};
use skm_serve::prelude::*;
use skm_serve::ReplicationRecord;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config() -> StreamConfig {
    StreamConfig::new(2)
        .with_bucket_size(20)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skm-follower-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn feed(client: &mut Client, n: usize, offset: f64) {
    for i in 0..n {
        let x = if i.is_multiple_of(2) { 0.0 } else { 60.0 };
        match client
            .ingest(vec![x + offset, (i % 5) as f64 * 0.1])
            .unwrap()
        {
            Response::Ingested { .. } => {}
            other => panic!("ingest answered {other:?}"),
        }
    }
}

/// Strict query on the primary: recomputes, publishes a fresh epoch, and
/// (because the primary logs strict-read markers) ships that recompute to
/// the follower too.
fn strict_centers(client: &mut Client) -> (Vec<Vec<f64>>, u64) {
    match client.query().unwrap() {
        Response::Centers { centers, epoch, .. } => (centers, epoch),
        other => panic!("strict query answered {other:?}"),
    }
}

/// Polls the follower's cached read until it publishes `epoch`, returning
/// the centers it serves at that epoch.
fn await_follower_epoch(client: &mut Client, epoch: u64, deadline: Duration) -> Vec<Vec<f64>> {
    let start = Instant::now();
    loop {
        match client.query_opts(&RequestOptions::cached()).unwrap() {
            Response::Centers {
                centers,
                epoch: seen,
                ..
            } if seen == epoch => return centers,
            Response::Centers { epoch: seen, .. } => {
                assert!(seen < epoch, "follower ran ahead: epoch {seen} > {epoch}");
            }
            // ReplicationLag while bootstrapping is expected; anything
            // else is not.
            Response::Error {
                code: ErrorCode::ReplicationLag,
                ..
            } => {}
            other => panic!("follower cached query answered {other:?}"),
        }
        assert!(
            start.elapsed() < deadline,
            "follower did not reach epoch {epoch} within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn follower_tails_the_primary_and_serves_its_published_answers() {
    let dir = temp_dir("e2e");

    // Primary: WAL on, fsync on every append so records become durable —
    // and therefore replicable — immediately.
    let primary_engine = Arc::new(
        Engine::new(&EngineSpec::sharded_cc(config(), 2, 8, 7))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(0))
            .unwrap(),
    );
    let primary = Server::bind("127.0.0.1:0", Arc::clone(&primary_engine), None)
        .unwrap()
        .spawn()
        .unwrap();

    // Follower: read-only replica of the default tenant, generous lag
    // bound (the convergence assertions below are exact, not lag-based).
    let follower_engine = Arc::new(
        Engine::new(&EngineSpec::sharded_cc(config(), 2, 8, 7))
            .unwrap()
            .with_follower(1_000_000),
    );
    let tail = start_follower(
        Arc::clone(&follower_engine),
        FollowerSpec::new(primary.addr().to_string()).with_retry(Duration::from_millis(50)),
    )
    .unwrap();
    let follower = Server::bind("127.0.0.1:0", Arc::clone(&follower_engine), None)
        .unwrap()
        .spawn()
        .unwrap();

    let mut writer = Client::connect(primary.addr()).unwrap();
    let mut reader = Client::connect(follower.addr()).unwrap();

    // Epoch 1: feed, strict-query the primary, and wait for the follower
    // to serve the same answer from its cache.
    feed(&mut writer, 120, 0.0);
    let (centers_1, epoch_1) = strict_centers(&mut writer);
    assert_eq!(epoch_1, 1);
    let follower_1 = await_follower_epoch(&mut reader, epoch_1, Duration::from_secs(10));
    assert_eq!(
        follower_1, centers_1,
        "epoch 1 centers must be bit-identical"
    );

    // The stream keeps flowing after bootstrap: epoch 2 converges too.
    feed(&mut writer, 80, 1.0);
    let (centers_2, epoch_2) = strict_centers(&mut writer);
    assert_eq!(epoch_2, 2);
    let follower_2 = await_follower_epoch(&mut reader, epoch_2, Duration::from_secs(10));
    assert_eq!(
        follower_2, centers_2,
        "epoch 2 centers must be bit-identical"
    );

    // A follower refuses writes and strict reads with the typed code.
    for refused in [
        reader.ingest(vec![1.0, 2.0]).unwrap(),
        reader.query().unwrap(),
    ] {
        match refused {
            Response::Error {
                code: ErrorCode::ReplicationLag,
                ..
            } => {}
            other => panic!("follower accepted a refused request: {other:?}"),
        }
    }
    // Strict stats are refused too (the typed error surfaces as io::Error
    // through the convenience accessor).
    assert!(reader.stats().is_err(), "strict stats must be refused");

    // Cached stats serve from the replicated state.
    let stats = reader.stats_opts(&RequestOptions::cached()).unwrap();
    assert_eq!(stats.points_seen, 200);

    reader.shutdown().unwrap();
    follower.shutdown().unwrap();
    tail.stop();
    writer.shutdown().unwrap();
    primary.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follower_refuses_cached_reads_before_first_sync() {
    // No tailing thread at all: the follower never syncs, so every read
    // path answers ReplicationLag rather than serving a cold tenant.
    let engine = Arc::new(
        Engine::new(&EngineSpec::sharded_cc(config(), 2, 8, 7))
            .unwrap()
            .with_follower(0),
    );
    let server = Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for response in [
        client.query_opts(&RequestOptions::cached()).unwrap(),
        client.query().unwrap(),
        client.ingest(vec![1.0, 2.0]).unwrap(),
        client.ingest_batch(vec![vec![1.0, 2.0]]).unwrap(),
    ] {
        match response {
            Response::Error {
                code: ErrorCode::ReplicationLag,
                ..
            } => {}
            other => panic!("unsynced follower answered {other:?}"),
        }
    }
    client.shutdown().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn raw_replicate_subscription_streams_snapshot_then_records() {
    let dir = temp_dir("raw");
    let engine = Arc::new(
        Engine::new(&EngineSpec::sharded_cc(config(), 2, 8, 7))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(0))
            .unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), None)
        .unwrap()
        .spawn()
        .unwrap();

    let mut writer = Client::connect(server.addr()).unwrap();
    feed(&mut writer, 10, 0.0);

    let mut subscriber = Client::builder(server.addr())
        .io_timeout(Duration::from_secs(5))
        .connect()
        .unwrap();
    subscriber.replicate(0).unwrap();
    let bootstrap_seq = match subscriber.recv().unwrap() {
        Response::ReplicaSnapshot { seq, snapshot, .. } => {
            assert!(snapshot.contains("snapshot_version"));
            assert!(
                seq >= 10,
                "snapshot covers the 10 logged ingests, got {seq}"
            );
            seq
        }
        other => panic!("subscription opened with {other:?}"),
    };

    // A write after the subscription arrives as a pushed record.
    writer.ingest(vec![3.0, 4.0]).unwrap();
    match subscriber.recv().unwrap() {
        Response::Replicate {
            seq,
            primary_seq,
            record: ReplicationRecord::Ingest { point },
        } => {
            assert_eq!(seq, bootstrap_seq + 1);
            assert!(primary_seq >= seq);
            assert_eq!(point, vec![3.0, 4.0]);
        }
        other => panic!("expected a pushed Ingest record, got {other:?}"),
    }

    writer.shutdown().unwrap();
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
