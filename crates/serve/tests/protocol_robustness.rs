//! Protocol-layer robustness: every class of bad input is answered with a
//! typed error response over the wire, and the engine stays usable
//! afterwards — the regression surface the serving layer adds on top of
//! `BucketBuffer`'s own validation.

use skm_serve::prelude::*;
use skm_serve::protocol::MAX_BATCH_POINTS;
use std::sync::Arc;

fn start_server() -> ServerHandle {
    let config = StreamConfig::new(2)
        .with_bucket_size(20)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 2, 8, 7)).unwrap());
    Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap()
}

fn expect_error(response: Response, expected: ErrorCode) {
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, expected, "unexpected error class: {message}");
            assert!(!message.is_empty());
        }
        other => panic!("expected {expected:?} error, got {other:?}"),
    }
}

/// After any rejected request, the engine must still ingest and answer
/// queries on the same connection.
fn assert_still_usable(client: &mut Client, ingested_before: u64) {
    for i in 0..40u32 {
        let x = if i % 2 == 0 { 0.0 } else { 80.0 };
        match client.ingest(vec![x, f64::from(i % 7)]).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("healthy ingest failed: {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, ingested_before + 40);
    let centers = client.query_centers().unwrap();
    assert_eq!(centers.len(), 2);
}

#[test]
fn malformed_json_lines_get_typed_errors_not_dropped_connections() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    for bad in [
        "this is not json",
        "{\"Ingest\":",
        "{\"NoSuchCommand\":{}}",
        "{\"Ingest\":{\"point\":\"strings are not points\"}}",
        "[1,2,3]",
        "42",
    ] {
        expect_error(
            client.send_raw_line(bad).unwrap(),
            ErrorCode::MalformedRequest,
        );
    }
    assert_still_usable(&mut client, 0);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn invalid_utf8_lines_get_a_typed_error_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // A line of raw non-UTF-8 bytes: the newline boundary is intact, so
    // the server must answer with MalformedRequest and keep the
    // connection aligned for the next (valid) request.
    stream.write_all(&[0xFF, 0xFE, 0x80, b'\n']).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::MalformedRequest);
            assert!(message.contains("UTF-8"), "{message}");
        }
        other => panic!("expected MalformedRequest, got {other:?}"),
    }

    stream
        .write_all(b"{\"Ingest\":{\"point\":[1.0,2.0]}}\n")
        .unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(
        matches!(
            Response::from_line(reply.trim()).unwrap(),
            Response::Ingested { .. }
        ),
        "connection desynced after the invalid-UTF-8 line: {reply}"
    );
    drop(stream);

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn wrong_dimension_ingest_is_rejected_and_engine_survives() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();

    expect_error(
        client.ingest(vec![1.0, 2.0, 3.0]).unwrap(),
        ErrorCode::DimensionMismatch,
    );
    expect_error(client.ingest(vec![]).unwrap(), ErrorCode::InvalidPoint);
    // Batch with a late wrong-dimension point: rejected atomically.
    expect_error(
        client
            .ingest_batch(vec![vec![5.0, 6.0], vec![7.0]])
            .unwrap(),
        ErrorCode::DimensionMismatch,
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, 1, "rejected requests consumed points");

    assert_still_usable(&mut client, 1);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn non_finite_coordinates_are_rejected_over_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();

    // The vendored JSON layer prints non-finite floats as `null`, which the
    // wire then decodes as NaN — exactly the hostile input the engine's
    // finiteness validation must catch.
    expect_error(
        client
            .send_raw_line("{\"Ingest\":{\"point\":[null,0]}}")
            .unwrap(),
        ErrorCode::NonFiniteCoordinate,
    );
    expect_error(
        client
            .ingest_batch(vec![vec![3.0, 4.0], vec![f64::NAN, 0.0]])
            .unwrap(),
        ErrorCode::NonFiniteCoordinate,
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, 1);

    assert_still_usable(&mut client, 1);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn oversized_batches_are_rejected_before_touching_the_engine() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let oversized: Vec<Vec<f64>> = (0..=MAX_BATCH_POINTS)
        .map(|i| vec![i as f64, 0.0])
        .collect();
    expect_error(
        client.ingest_batch(oversized).unwrap(),
        ErrorCode::BatchTooLarge,
    );
    assert_eq!(client.stats().unwrap().points_seen, 0);
    // The limit itself is accepted.
    let exactly: Vec<Vec<f64>> = (0..MAX_BATCH_POINTS).map(|i| vec![i as f64, 0.0]).collect();
    match client.ingest_batch(exactly).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, MAX_BATCH_POINTS as u64),
        other => panic!("limit-sized batch rejected: {other:?}"),
    }
    assert_still_usable(&mut client, MAX_BATCH_POINTS as u64);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn query_before_any_point_is_a_typed_empty_stream_error() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    expect_error(client.query().unwrap(), ErrorCode::EmptyStream);
    assert_still_usable(&mut client, 0);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn snapshot_without_directory_and_path_escapes_are_refused() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    // This server has no snapshot directory configured.
    expect_error(
        client.snapshot("state.json").unwrap(),
        ErrorCode::SnapshotUnavailable,
    );
    client.shutdown().unwrap();
    handle.shutdown().unwrap();

    // A snapshot-enabled server still refuses names that escape the
    // directory.
    let dir = std::env::temp_dir().join(format!("skm-serve-snap-{}", std::process::id()));
    let config = StreamConfig::new(2)
        .with_bucket_size(20)
        .with_kmeans_runs(1);
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 1, 8, 9)).unwrap());
    let handle = Server::bind("127.0.0.1:0", engine, Some(dir.clone()))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    for bad in ["../escape.json", "a/b.json", "", ".."] {
        expect_error(
            client.snapshot(bad).unwrap(),
            ErrorCode::SnapshotUnavailable,
        );
    }
    match client.snapshot("ok.json").unwrap() {
        Response::Snapshotted { bytes, .. } => assert!(bytes > 0),
        other => panic!("legitimate snapshot failed: {other:?}"),
    }
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blank_lines_are_tolerated_and_multiple_clients_interleave() {
    let handle = start_server();
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    // A blank line is skipped, not answered; follow with a real request to
    // confirm the connection is still aligned.
    match a
        .send_raw_line("\n{\"Ingest\":{\"point\":[0.0,0.0]}}")
        .unwrap()
    {
        Response::Ingested { .. } => {}
        other => panic!("blank line desynced the connection: {other:?}"),
    }
    b.ingest(vec![50.0, 50.0]).unwrap();
    let stats = a.stats().unwrap();
    assert_eq!(stats.points_seen, 2);
    a.shutdown().unwrap();
    handle.shutdown().unwrap();
}
