//! Protocol-layer robustness: every class of bad input is answered with a
//! typed error response over the wire, and the engine stays usable
//! afterwards — the regression surface the serving layer adds on top of
//! `BucketBuffer`'s own validation.

use skm_serve::prelude::*;
use skm_serve::protocol::MAX_BATCH_POINTS;
use std::sync::Arc;

fn start_server() -> ServerHandle {
    let config = StreamConfig::new(2)
        .with_bucket_size(20)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 2, 8, 7)).unwrap());
    Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap()
}

fn expect_error(response: Response, expected: ErrorCode) {
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, expected, "unexpected error class: {message}");
            assert!(!message.is_empty());
        }
        other => panic!("expected {expected:?} error, got {other:?}"),
    }
}

/// After any rejected request, the engine must still ingest and answer
/// queries on the same connection.
fn assert_still_usable(client: &mut Client, ingested_before: u64) {
    for i in 0..40u32 {
        let x = if i % 2 == 0 { 0.0 } else { 80.0 };
        match client.ingest(vec![x, f64::from(i % 7)]).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("healthy ingest failed: {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, ingested_before + 40);
    let centers = client.query_centers().unwrap();
    assert_eq!(centers.len(), 2);
}

#[test]
fn malformed_json_lines_get_typed_errors_not_dropped_connections() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    for bad in [
        "this is not json",
        "{\"Ingest\":",
        "{\"NoSuchCommand\":{}}",
        "{\"Ingest\":{\"point\":\"strings are not points\"}}",
        "[1,2,3]",
        "42",
    ] {
        expect_error(
            client.send_raw_line(bad).unwrap(),
            ErrorCode::MalformedRequest,
        );
    }
    assert_still_usable(&mut client, 0);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn invalid_utf8_lines_get_a_typed_error_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // A line of raw non-UTF-8 bytes: the newline boundary is intact, so
    // the server must answer with MalformedRequest and keep the
    // connection aligned for the next (valid) request.
    stream.write_all(&[0xFF, 0xFE, 0x80, b'\n']).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::MalformedRequest);
            assert!(message.contains("UTF-8"), "{message}");
        }
        other => panic!("expected MalformedRequest, got {other:?}"),
    }

    stream
        .write_all(b"{\"Ingest\":{\"point\":[1.0,2.0]}}\n")
        .unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(
        matches!(
            Response::from_line(reply.trim()).unwrap(),
            Response::Ingested { .. }
        ),
        "connection desynced after the invalid-UTF-8 line: {reply}"
    );
    drop(stream);

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn wrong_dimension_ingest_is_rejected_and_engine_survives() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();

    expect_error(
        client.ingest(vec![1.0, 2.0, 3.0]).unwrap(),
        ErrorCode::DimensionMismatch,
    );
    expect_error(client.ingest(vec![]).unwrap(), ErrorCode::InvalidPoint);
    // Batch with a late wrong-dimension point: rejected atomically.
    expect_error(
        client
            .ingest_batch(vec![vec![5.0, 6.0], vec![7.0]])
            .unwrap(),
        ErrorCode::DimensionMismatch,
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, 1, "rejected requests consumed points");

    assert_still_usable(&mut client, 1);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn non_finite_coordinates_are_rejected_over_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();

    // The vendored JSON layer prints non-finite floats as `null`, which the
    // wire then decodes as NaN — exactly the hostile input the engine's
    // finiteness validation must catch.
    expect_error(
        client
            .send_raw_line("{\"Ingest\":{\"point\":[null,0]}}")
            .unwrap(),
        ErrorCode::NonFiniteCoordinate,
    );
    expect_error(
        client
            .ingest_batch(vec![vec![3.0, 4.0], vec![f64::NAN, 0.0]])
            .unwrap(),
        ErrorCode::NonFiniteCoordinate,
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, 1);

    assert_still_usable(&mut client, 1);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn oversized_batches_are_rejected_before_touching_the_engine() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let oversized: Vec<Vec<f64>> = (0..=MAX_BATCH_POINTS)
        .map(|i| vec![i as f64, 0.0])
        .collect();
    expect_error(
        client.ingest_batch(oversized).unwrap(),
        ErrorCode::BatchTooLarge,
    );
    assert_eq!(client.stats().unwrap().points_seen, 0);
    // The limit itself is accepted.
    let exactly: Vec<Vec<f64>> = (0..MAX_BATCH_POINTS).map(|i| vec![i as f64, 0.0]).collect();
    match client.ingest_batch(exactly).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, MAX_BATCH_POINTS as u64),
        other => panic!("limit-sized batch rejected: {other:?}"),
    }
    assert_still_usable(&mut client, MAX_BATCH_POINTS as u64);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn query_before_any_point_is_a_typed_empty_stream_error() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    expect_error(client.query().unwrap(), ErrorCode::EmptyStream);
    assert_still_usable(&mut client, 0);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn snapshot_without_directory_and_path_escapes_are_refused() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    // This server has no snapshot directory configured.
    expect_error(
        client.snapshot("state.json").unwrap(),
        ErrorCode::SnapshotUnavailable,
    );
    client.shutdown().unwrap();
    handle.shutdown().unwrap();

    // A snapshot-enabled server still refuses names that escape the
    // directory.
    let dir = std::env::temp_dir().join(format!("skm-serve-snap-{}", std::process::id()));
    let config = StreamConfig::new(2)
        .with_bucket_size(20)
        .with_kmeans_runs(1);
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 1, 8, 9)).unwrap());
    let handle = Server::bind("127.0.0.1:0", engine, Some(dir.clone()))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    for bad in ["../escape.json", "a/b.json", "", ".."] {
        expect_error(
            client.snapshot(bad).unwrap(),
            ErrorCode::SnapshotUnavailable,
        );
    }
    match client.snapshot("ok.json").unwrap() {
        Response::Snapshotted { bytes, .. } => assert!(bytes > 0),
        other => panic!("legitimate snapshot failed: {other:?}"),
    }
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hostile_window_values_get_bad_window_not_panics_over_json() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    client.ingest(vec![80.0, 2.0]).unwrap();

    // Every out-of-domain value the wire can spell: zero, negative, above
    // the 2^53 cap, non-finite seconds, both selectors, neither selector.
    // All of them parse (the carrier is permissive by design) and die in
    // validation with the typed BadWindow.
    for kind in ["Query", "Stats"] {
        for bad in [
            "{\"last_points\":0}",
            "{\"last_points\":-5}",
            "{\"last_points\":18446744073709551615}",
            "{\"last_points\":9007199254740993}",
            "{\"last_secs\":0}",
            "{\"last_secs\":-1.5}",
            "{\"last_secs\":1e300}",
            "{\"last_points\":10,\"last_secs\":1.0}",
            "{}",
        ] {
            expect_error(
                client
                    .send_raw_line(&format!("{{\"{kind}\":{{\"window\":{bad}}}}}"))
                    .unwrap(),
                ErrorCode::BadWindow,
            );
        }
        // Wrong *types* are not a window problem, they are a parse
        // problem: MalformedRequest, exactly like any other bad field.
        for garbage in ["\"ten\"", "[1,2]", "{\"last_points\":\"ten\"}"] {
            expect_error(
                client
                    .send_raw_line(&format!("{{\"{kind}\":{{\"window\":{garbage}}}}}"))
                    .unwrap(),
                ErrorCode::MalformedRequest,
            );
        }
    }

    assert_still_usable(&mut client, 2);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn hostile_window_values_get_bad_window_not_panics_over_binary() {
    let handle = start_server();
    let mut client = Client::builder(handle.addr())
        .codec(CodecKind::Binary)
        .connect()
        .unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    client.ingest(vec![80.0, 2.0]).unwrap();

    let hostile = [
        WindowSpec::points(0),
        WindowSpec::points(u64::MAX),
        WindowSpec::points((1 << 53) + 1),
        WindowSpec::secs(0.0),
        WindowSpec::secs(-1.5),
        WindowSpec::secs(1e300),
        WindowSpec::secs(f64::NAN),
        // Both selectors and neither: representable on the wire, rejected
        // in validation.
        WindowSpec {
            last_points: Some(10),
            last_secs: Some(1.0),
        },
        WindowSpec {
            last_points: None,
            last_secs: None,
        },
    ];
    for spec in hostile {
        for request in [
            Request::Query {
                freshness: Freshness::Strict,
                namespace: None,
                window: Some(spec),
            },
            Request::Stats {
                freshness: Freshness::Strict,
                namespace: None,
                window: Some(spec),
            },
        ] {
            match client.call(&request).unwrap() {
                Response::Error { code, message } => {
                    assert_eq!(code, ErrorCode::BadWindow, "{spec:?}: {message}");
                    assert!(!message.is_empty());
                }
                other => panic!("{spec:?} must be refused, got {other:?}"),
            }
        }
    }

    assert_still_usable(&mut client, 2);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

/// A truncated binary window section must read as an *incomplete or
/// malformed frame*, never silently as a windowless pre-1.5 request — the
/// invariant that makes appending the section to the frame tail safe.
#[test]
fn truncated_binary_window_sections_are_malformed_not_windowless() {
    use std::io::{BufRead, BufReader, Read, Write};

    let handle = start_server();
    let mut feeder = Client::connect(handle.addr()).unwrap();
    feeder.ingest(vec![1.0, 2.0]).unwrap();

    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    stream
        .write_all(b"{\"Hello\":{\"codec\":\"binary\"}}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();

    // A full windowed Query payload is
    //   [0x03, freshness, ns-presence, points-presence, u64, secs-presence]
    // = 3 + 1 + 8 + 1 bytes. Every strict prefix that enters the window
    // section must be refused as malformed.
    let mut full = vec![0x03u8, 0x00, 0x00, 0x01];
    full.extend_from_slice(&500u64.to_le_bytes());
    full.push(0x00);
    for cut in 4..full.len() {
        let payload = &full[..cut];
        stream
            .write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes())
            .unwrap();
        stream.write_all(payload).unwrap();
        let mut len = [0u8; 4];
        reader.read_exact(&mut len).unwrap();
        let mut response = vec![0u8; u32::from_le_bytes(len) as usize];
        reader.read_exact(&mut response).unwrap();
        // 0x87 = Error frame; anything else means the truncated section
        // was interpreted as data.
        assert_eq!(
            response[0], 0x87,
            "cut at {cut}: truncated window read as tag 0x{:02x}",
            response[0]
        );
    }
    drop(stream);

    feeder.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn blank_lines_are_tolerated_and_multiple_clients_interleave() {
    let handle = start_server();
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    // A blank line is skipped, not answered; follow with a real request to
    // confirm the connection is still aligned.
    match a
        .send_raw_line("\n{\"Ingest\":{\"point\":[0.0,0.0]}}")
        .unwrap()
    {
        Response::Ingested { .. } => {}
        other => panic!("blank line desynced the connection: {other:?}"),
    }
    b.ingest(vec![50.0, 50.0]).unwrap();
    let stats = a.stats().unwrap();
    assert_eq!(stats.points_seen, 2);
    a.shutdown().unwrap();
    handle.shutdown().unwrap();
}
