//! End-to-end acceptance for the evented server core and the revision-1.3
//! handshake: pre-1.3 newline-JSON clients connect unmodified (no
//! handshake ⇒ JSON assumed), the binary codec negotiates and serves every
//! request type, pipelined frames are answered in order, hostile
//! handshakes leave the connection usable, shutdown drains pipelined
//! in-flight requests (the PR-4 idle-connection deadlock fix restated for
//! the evented loop).

use skm_serve::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> EngineSpec {
    EngineSpec::sharded_cc(
        StreamConfig::new(2)
            .with_bucket_size(20)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2),
        2,
        8,
        7,
    )
}

fn start() -> ServerHandle {
    let engine = Arc::new(Engine::new(&spec()).unwrap());
    Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap()
}

/// Joins `handle.shutdown()` under a watchdog: a hang here is exactly the
/// deadlock class this suite exists to catch, and must fail the test
/// instead of wedging the runner.
fn shutdown_with_watchdog(handle: ServerHandle) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        tx.send(handle.shutdown().is_ok()).ok();
    });
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(clean) => assert!(clean, "server shutdown reported an error"),
        Err(_) => panic!("server shutdown deadlocked (watchdog expired)"),
    }
}

#[test]
fn a_pre_1_3_json_client_connects_unmodified_without_a_handshake() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start();
    // Raw newline-JSON with no Hello — the complete pre-1.3 wire dialect.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();

    stream
        .write_all(b"{\"Ingest\":{\"point\":[1.0,2.0]}}\n")
        .unwrap();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 1),
        other => panic!("pre-1.3 ingest refused: {other:?}"),
    }

    // Blank keep-alive lines are still skipped, not answered — and do not
    // consume the connection's first-frame handshake window.
    stream.write_all(b"\n{\"Stats\":{}}\n").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    match Response::from_line(reply.trim()).unwrap() {
        Response::Stats { stats, .. } => assert_eq!(stats.points_seen, 1),
        other => panic!("pre-1.3 stats refused: {other:?}"),
    }
    drop(stream);

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}

#[test]
fn the_binary_handshake_negotiates_and_serves_every_request_type() {
    let handle = start();
    let mut client = Client::builder(handle.addr())
        .codec(CodecKind::Binary)
        .connect()
        .unwrap();
    assert_eq!(client.codec_kind(), CodecKind::Binary);

    for i in 0..40u32 {
        let x = if i % 2 == 0 { 0.0 } else { 80.0 };
        match client.ingest(vec![x, f64::from(i % 5)]).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("binary ingest failed: {other:?}"),
        }
    }
    match client
        .ingest_batch(vec![vec![0.0, 0.0], vec![80.0, 1.0]])
        .unwrap()
    {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 2),
        other => panic!("binary batch failed: {other:?}"),
    }
    assert_eq!(client.query_centers().unwrap().len(), 2);
    assert_eq!(client.stats().unwrap().points_seen, 42);
    match client.query_opts(&RequestOptions::cached()).unwrap() {
        Response::Centers { .. } => {}
        other => panic!("binary cached query failed: {other:?}"),
    }
    // Typed errors travel the binary codec too.
    match client.ingest(vec![1.0]).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::DimensionMismatch),
        other => panic!("expected a typed error, got {other:?}"),
    }

    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}

#[test]
fn binary_and_json_connections_interleave_on_one_server() {
    let handle = start();
    let mut json = Client::connect(handle.addr()).unwrap();
    let mut binary = Client::builder(handle.addr())
        .codec(CodecKind::Binary)
        .connect()
        .unwrap();
    json.ingest(vec![1.0, 2.0]).unwrap();
    binary.ingest(vec![3.0, 4.0]).unwrap();
    assert_eq!(json.stats().unwrap().points_seen, 2);
    assert_eq!(binary.stats().unwrap().points_seen, 2);
    json.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}

#[test]
fn pipelined_frames_are_answered_in_order_on_one_connection() {
    let handle = start();
    for kind in [CodecKind::Json, CodecKind::Binary] {
        let mut client = Client::builder(handle.addr())
            .codec(kind)
            .connect()
            .unwrap();
        // One write carrying interleaved ingests, stats and queries; the
        // responses must come back one per request, in request order.
        let requests: Vec<Request> = (0..30)
            .flat_map(|i| {
                let x = if i % 2 == 0 { 0.0 } else { 80.0 };
                vec![
                    Request::Ingest {
                        point: vec![x, f64::from(i % 5)],
                        namespace: None,
                    },
                    Request::Stats {
                        freshness: Freshness::Cached,
                        namespace: None,
                        window: None,
                    },
                ]
            })
            .collect();
        let responses = client.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        let mut seen = 0;
        for (i, response) in responses.iter().enumerate() {
            if i % 2 == 0 {
                match response {
                    Response::Ingested { points_seen, .. } => {
                        assert!(*points_seen > seen, "out-of-order ingest at {i} ({kind:?})");
                        seen = *points_seen;
                    }
                    other => panic!("slot {i} should be Ingested ({kind:?}): {other:?}"),
                }
            } else {
                assert!(
                    matches!(response, Response::Stats { .. }),
                    "slot {i} should be Stats ({kind:?}): {response:?}"
                );
            }
        }
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}

#[test]
fn garbage_and_late_handshakes_get_bad_codec_and_the_connection_survives() {
    let handle = start();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown codec as the first frame: typed refusal, connection stays on
    // JSON and keeps working.
    match client
        .send_raw_line("{\"Hello\":{\"codec\":\"gzip\"}}")
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadCodec),
        other => panic!("expected BadCodec, got {other:?}"),
    }
    match client.ingest(vec![1.0, 2.0]).unwrap() {
        Response::Ingested { .. } => {}
        other => panic!("connection unusable after refused handshake: {other:?}"),
    }

    // A Hello after the first frame is late, even with a valid codec.
    match client
        .call(&Request::Hello {
            codec: "binary".to_string(),
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadCodec),
        other => panic!("expected BadCodec for a late Hello, got {other:?}"),
    }
    assert_eq!(client.stats().unwrap().points_seen, 1);

    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}

#[test]
fn shutdown_drains_pipelined_in_flight_requests_before_exit() {
    let handle = start();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Everything ships in ONE write: the server sees a buffer holding 20
    // ingests and the Shutdown. All 21 responses must come back — the
    // buffered requests ahead of the Shutdown are in-flight work the drain
    // path owes an answer.
    let mut requests: Vec<Request> = (0..20)
        .map(|i| Request::Ingest {
            point: vec![f64::from(i), 0.0],
            namespace: None,
        })
        .collect();
    requests.push(Request::Shutdown {});
    let responses = client.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), 21);
    for response in &responses[..20] {
        assert!(
            matches!(response, Response::Ingested { .. }),
            "{response:?}"
        );
    }
    assert!(matches!(responses[20], Response::Bye {}));
    shutdown_with_watchdog(handle);
}

#[test]
fn shutdown_completes_with_idle_connections_held_open() {
    // The PR-4 regression restated for the evented loop: connections that
    // never send a byte must not wedge the shutdown join.
    let handle = start();
    let idle: Vec<std::net::TcpStream> = (0..16)
        .map(|_| std::net::TcpStream::connect(handle.addr()).unwrap())
        .collect();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ingest(vec![1.0, 2.0]).unwrap();
    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
    drop(idle);
}

#[test]
fn a_write_heavy_pipeline_is_absorbed_by_backpressure_not_a_deadlock() {
    let handle = start();
    let mut feeder = Client::builder(handle.addr())
        .codec(CodecKind::Binary)
        .connect()
        .unwrap();
    for i in 0..60u32 {
        let x = if i % 2 == 0 { 0.0 } else { 80.0 };
        feeder.ingest(vec![x, f64::from(i % 5)]).unwrap();
    }
    // 4000 queries written before a single response is read: the response
    // bytes pile up in the connection's write buffer and the socket, and
    // the server must keep making progress (pausing reads at the high
    // water mark rather than blocking a thread) until the client drains.
    let requests: Vec<Request> = (0..4000)
        .map(|_| Request::Query {
            freshness: Freshness::Cached,
            namespace: None,
            window: None,
        })
        .collect();
    let responses = feeder.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), 4000);
    for response in &responses {
        assert!(matches!(response, Response::Centers { .. }), "{response:?}");
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    shutdown_with_watchdog(handle);
}
