//! Concurrency guarantees of the published read path: cached queries never
//! observe a torn snapshot while ingestion and strict queries hammer the
//! same engine, and the strict path stays bit-identical to driving the
//! clusterer directly at a fixed `(seed, shards, batch)`.

use skm_serve::prelude::*;
use skm_stream::{ShardedStream, StreamingClusterer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SEED: u64 = 71;
const SHARDS: usize = 2;
const BATCH: usize = 16;

fn config() -> StreamConfig {
    StreamConfig::new(3)
        .with_bucket_size(30)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2)
}

fn point(i: usize) -> [f64; 2] {
    let anchors = [[0.0, 0.0], [60.0, 0.0], [0.0, 60.0]];
    let a = anchors[i % anchors.len()];
    [a[0] + (i % 7) as f64 * 0.1, a[1] + (i % 11) as f64 * 0.1]
}

/// Parallel ingest + strict queries on one thread pair, cached queries on
/// reader threads: every cached observation must be internally consistent
/// (it is one immutable published value) and the observed sequence must be
/// monotone in both epoch and points-seen watermark.
#[test]
fn cached_queries_never_observe_torn_snapshots() {
    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let done = Arc::new(AtomicBool::new(false));

    // Seed the slot (epoch 1) before the readers start, so every cached
    // query below is a pure slot read — an empty slot would make the first
    // cached query per reader fall back to a strict (publishing) one.
    let warmup: Vec<Vec<f64>> = (0..100).map(|i| point(i).to_vec()).collect();
    engine.ingest_batch(&warmup).unwrap();
    assert_eq!(engine.query(Freshness::Strict).unwrap().epoch, 1);

    std::thread::scope(|scope| {
        // Writer: ingest continuously, republish via a strict query every
        // few batches. Collect the publish watermarks for the final check.
        let writer_engine = Arc::clone(&engine);
        let writer_done = Arc::clone(&done);
        let writer = scope.spawn(move || {
            let mut published = Vec::new();
            for round in 0..60 {
                let batch: Vec<Vec<f64>> = (round * 50..(round + 1) * 50)
                    .map(|i| point(i).to_vec())
                    .collect();
                writer_engine.ingest_batch(&batch).unwrap();
                if round % 5 == 4 {
                    let p = writer_engine.query(Freshness::Strict).unwrap();
                    published.push((p.epoch, p.points_seen));
                }
            }
            writer_done.store(true, Ordering::SeqCst);
            published
        });

        // Readers: spin on cached queries the whole time.
        let mut readers = Vec::new();
        for _ in 0..3 {
            let reader_engine = Arc::clone(&engine);
            let reader_done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut last: Option<(u64, u64)> = None;
                let mut observations = 0u64;
                while !reader_done.load(Ordering::SeqCst) {
                    let p = reader_engine.query(Freshness::Cached).unwrap();
                    // Internal consistency of one observation.
                    assert_eq!(p.centers.len(), 3, "cached answer lost centers");
                    assert!(p.cost.is_finite(), "cached answer lost its cost");
                    assert!(p.epoch >= 1, "published answers start at epoch 1");
                    assert!(p.stats.ran_kmeans);
                    // Monotonicity across observations: strict publishes
                    // are serialized under the ingest lock, so a later
                    // epoch must carry a later (or equal) watermark.
                    if let Some((epoch, seen)) = last {
                        assert!(p.epoch >= epoch, "epoch went backwards");
                        if p.epoch == epoch {
                            assert_eq!(p.points_seen, seen, "same epoch, different payload");
                        } else {
                            assert!(p.points_seen >= seen, "newer epoch, older watermark");
                        }
                    }
                    last = Some((p.epoch, p.points_seen));
                    observations += 1;
                }
                observations
            }));
        }

        let published = writer.join().unwrap();
        // The writer published 12 strict answers with strictly increasing
        // epochs and watermarks.
        assert_eq!(published.len(), 12);
        assert!(published
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        for reader in readers {
            let observations = reader.join().unwrap();
            assert!(observations > 0, "reader never got a cached answer");
        }
    });

    // After the run the slot holds the last publish (warmup epoch 1 plus
    // the writer's 12), and cached queries reproduce it exactly.
    let last = engine.query(Freshness::Cached).unwrap();
    assert_eq!(last.epoch, 13);
    assert_eq!(last.points_seen, engine.published().unwrap().points_seen);
}

/// The strict path through the engine must stay bit-identical to driving
/// the sharded stream (and the single-backend CC) directly at the same
/// `(seed, shards, batch)` — i.e. the publish plumbing changed nothing
/// about what a strict query computes.
#[test]
fn strict_queries_are_bit_identical_to_the_direct_clusterers() {
    let total = 900usize;
    let mid = 450usize;

    // Sharded backend vs in-process ShardedStream.
    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let mut direct = ShardedStream::cc(config(), SHARDS, BATCH, SEED).unwrap();
    for i in 0..total {
        let p = point(i);
        engine.ingest(&p).unwrap();
        direct.update(&p).unwrap();
        if i + 1 == mid {
            let served = engine.query(Freshness::Strict).unwrap();
            let expected = direct.query().unwrap();
            assert_eq!(served.centers, expected, "mid-stream centers diverged");
        }
    }
    let served = engine.query(Freshness::Strict).unwrap();
    let expected = direct.query().unwrap();
    assert_eq!(served.centers, expected, "end-of-stream centers diverged");
    assert_eq!(served.points_seen, direct.points_seen());
    // The direct stream published the same epochs the engine did.
    assert_eq!(direct.published().unwrap().epoch, 2);
    assert_eq!(served.epoch, 2);

    // Cached reads in between strict ones must not perturb the strict
    // sequence (they consume no RNG and take no lock).
    let engine_with_cached =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let mut reference = ShardedStream::cc(config(), SHARDS, BATCH, SEED).unwrap();
    for i in 0..total {
        let p = point(i);
        engine_with_cached.ingest(&p).unwrap();
        reference.update(&p).unwrap();
        if i + 1 == 100 {
            // Seed the slot with one strict query (mirrored on the
            // reference): every later cached query is then a pure slot
            // read that consumes no RNG.
            engine_with_cached.query(Freshness::Strict).unwrap();
            reference.query().unwrap();
        } else if i % 100 == 99 {
            engine_with_cached.query(Freshness::Cached).unwrap();
        }
        if i + 1 == mid {
            engine_with_cached.query(Freshness::Strict).unwrap();
            reference.query().unwrap();
        }
    }
    assert_eq!(
        engine_with_cached.query(Freshness::Strict).unwrap().centers,
        reference.query().unwrap(),
        "interleaved cached queries perturbed the strict path"
    );
}
