//! Property tests pinning snapshot → restore → continue bit-identical to an
//! uninterrupted run, for every serializable clusterer (CT, CC, RCC) and the
//! sharded stream, across several ChaCha-driven random streams and cut
//! points (including cuts inside a partially filled base bucket).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_stream::prelude::*;
use skm_stream::ShardedStreamState;

fn stream_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let anchors = [[0.0, 0.0], [35.0, 0.0], [0.0, 35.0]];
    (0..n)
        .map(|i| {
            let a = anchors[i % anchors.len()];
            [a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()]
        })
        .collect()
}

fn config(k: usize, m: usize) -> StreamConfig {
    StreamConfig::new(k)
        .with_bucket_size(m)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2)
}

/// Runs the generic round trip: stream `points`, snapshotting (JSON
/// round trip included) after `cut` points, and checks the continued run's
/// queries are bit-identical to an uninterrupted run. A mid-stream query
/// before the cut exercises cache state surviving the snapshot.
fn check_round_trip<C, F>(points: &[[f64; 2]], cut: usize, make: F)
where
    C: StreamingClusterer + serde::Serialize + serde::Deserialize,
    F: Fn() -> C,
{
    let mut reference = make();
    let mut resumable = make();
    for p in &points[..cut] {
        reference.update(p).unwrap();
        resumable.update(p).unwrap();
    }
    // Queries mutate coreset caches and RNG state; both copies must carry
    // that mutated state across the snapshot boundary identically.
    assert_eq!(reference.query().unwrap(), resumable.query().unwrap());

    let json = serde_json::to_string(&resumable).unwrap();
    drop(resumable);
    let mut restored: C = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.points_seen(), cut as u64);
    assert_eq!(restored.memory_points(), reference.memory_points());

    for p in &points[cut..] {
        reference.update(p).unwrap();
        restored.update(p).unwrap();
    }
    assert_eq!(reference.query().unwrap(), restored.query().unwrap());
    assert_eq!(reference.points_seen(), restored.points_seen());
}

#[test]
fn ct_snapshot_round_trips_bit_identically() {
    for seed in [1u64, 2, 3] {
        let points = stream_points(600, seed);
        // 287 cuts inside a partial bucket (bucket size 20).
        for cut in [287, 400] {
            check_round_trip(&points, cut, || {
                CoresetTreeClusterer::new(config(3, 20), 40 + seed).unwrap()
            });
        }
    }
}

#[test]
fn cc_snapshot_round_trips_bit_identically() {
    for seed in [4u64, 5, 6] {
        let points = stream_points(600, seed);
        for cut in [293, 380] {
            check_round_trip(&points, cut, || {
                CachedCoresetTree::new(config(3, 20), 70 + seed).unwrap()
            });
        }
    }
}

#[test]
fn rcc_snapshot_round_trips_bit_identically() {
    for seed in [7u64, 8] {
        let points = stream_points(600, seed);
        for cut in [301, 450] {
            check_round_trip(&points, cut, || {
                RecursiveCachedTree::with_top_merge_degree(config(2, 16), 2, 4, 90 + seed).unwrap()
            });
        }
    }
}

#[test]
fn sharded_snapshot_round_trips_bit_identically_across_seeds() {
    for seed in [11u64, 12] {
        let points = stream_points(800, seed);
        let cut = 411usize;
        let mk = || ShardedStream::cc(config(3, 20), 4, 32, 500 + seed).unwrap();

        let mut reference = mk();
        let mut resumable = mk();
        for p in &points[..cut] {
            reference.update(p).unwrap();
            resumable.update(p).unwrap();
        }
        assert_eq!(reference.query().unwrap(), resumable.query().unwrap());

        let json = serde_json::to_string(&resumable.snapshot().unwrap()).unwrap();
        drop(resumable);
        let state: ShardedStreamState = serde_json::from_str(&json).unwrap();
        let mut restored = ShardedStream::<CachedCoresetTree>::restore(&state).unwrap();

        for p in &points[cut..] {
            reference.update(p).unwrap();
            restored.update(p).unwrap();
        }
        assert_eq!(reference.query().unwrap(), restored.query().unwrap());
        let a = reference.stats().unwrap();
        let b = restored.stats().unwrap();
        assert_eq!(a, b);
    }
}
