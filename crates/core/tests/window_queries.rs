//! Window-query semantics shared by every backend that stores a summary
//! structure: whole-stream windows are bit-identical to un-windowed
//! queries, strict sub-windows cover at least the requested points, the
//! answer tracks stream drift, and the whole machinery is deterministic
//! for a fixed `(seed, shards, batch, window)`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_stream::prelude::*;

fn config(k: usize, m: usize) -> StreamConfig {
    StreamConfig::new(k)
        .with_bucket_size(m)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2)
}

/// Two-phase drift stream: `n1` points near the origin, then `n2` points
/// near (100, 100).
fn drift_points(n1: usize, n2: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n1 + n2);
    for _ in 0..n1 {
        out.push([rng.gen::<f64>(), rng.gen::<f64>()]);
    }
    for _ in 0..n2 {
        out.push([100.0 + rng.gen::<f64>(), 100.0 + rng.gen::<f64>()]);
    }
    out
}

fn feed(clusterer: &mut dyn StreamingClusterer, points: &[[f64; 2]]) {
    for p in points {
        clusterer.update(p).unwrap();
    }
}

fn assert_window_semantics(mut make: impl FnMut() -> Box<dyn StreamingClusterer>) {
    // Long enough that a 300-point window maps to a short bucket suffix in
    // every backend geometry under test (bucket 40, up to 3 shards), so the
    // bucket-granular coverage stays well below the stream length.
    let points = drift_points(1200, 1200, 42);

    // Whole-stream window == omitted window, bit for bit (same RNG
    // trajectory, so also same answer on a *subsequent* query).
    let mut a = make();
    let mut b = make();
    feed(a.as_mut(), &points);
    feed(b.as_mut(), &points);
    let whole = a.query_window_clustering(u64::MAX).unwrap();
    let plain = b.query_clustering().unwrap();
    assert_eq!(whole.centers, plain.centers);
    assert!(whole.window.is_none());
    // The RNG trajectory matched too: a subsequent pair still agrees.
    let whole2 = a.query_window_clustering(2_000_000).unwrap();
    let plain2 = b.query_clustering().unwrap();
    assert_eq!(whole2.centers, plain2.centers);

    // A strict sub-window covering the drifted tail answers from recent
    // summaries: coverage >= requested, and centers sit on the new blob.
    let mut c = make();
    feed(c.as_mut(), &points);
    let windowed = c.query_window_clustering(300).unwrap();
    let info = windowed.window.expect("sub-window must report coverage");
    assert_eq!(info.last_points, 300);
    assert!(
        info.covered_points >= 300,
        "coverage {} < window 300",
        info.covered_points
    );
    assert!(
        info.covered_points < 2400,
        "coverage {} should not span the whole stream",
        info.covered_points
    );
    for center in windowed.centers.iter() {
        assert!(
            center[0] > 50.0 && center[1] > 50.0,
            "windowed center {center:?} sits on stale data"
        );
    }

    // Determinism: a fresh identically-seeded instance answers the same
    // window bit-identically.
    let mut d = make();
    feed(d.as_mut(), &points);
    let again = d.query_window_clustering(300).unwrap();
    assert_eq!(again.centers, windowed.centers);
    assert_eq!(again.window, windowed.window);

    // Zero windows are rejected; windowed queries on an empty stream fail.
    assert!(c.query_window_clustering(0).is_err());
    let mut empty = make();
    assert!(empty.query_window_clustering(10).is_err());
}

#[test]
fn ct_window_semantics() {
    assert_window_semantics(|| Box::new(CoresetTreeClusterer::new(config(2, 40), 7).unwrap()));
}

#[test]
fn cc_window_semantics() {
    assert_window_semantics(|| Box::new(CachedCoresetTree::new(config(2, 40), 7).unwrap()));
}

#[test]
fn rcc_window_semantics() {
    assert_window_semantics(|| Box::new(RecursiveCachedTree::new(config(2, 40), 2, 7).unwrap()));
}

#[test]
fn sharded_window_semantics() {
    assert_window_semantics(|| Box::new(ShardedStream::cc(config(2, 40), 3, 32, 7).unwrap()));
}

#[test]
fn window_inside_partial_bucket_is_exact() {
    // Bucket size 100, only 60 points seen: a 20-point window fits in the
    // partial bucket and is answered exactly (coverage == window).
    let mut cc = CachedCoresetTree::new(config(2, 100), 3).unwrap();
    let points = drift_points(30, 30, 5);
    feed(&mut cc, &points);
    let result = cc.query_window_clustering(20).unwrap();
    let info = result.window.unwrap();
    assert_eq!(info.last_points, 20);
    assert_eq!(info.covered_points, 20);
}

#[test]
fn interleaved_coverage_probes_do_not_perturb_whole_stream_answers() {
    // Coverage probes are pure span arithmetic (windowed *stats* ride on
    // them), so interleaving any number of them leaves the whole-stream
    // answer bit-identical to a probe-free run. Windowed *queries* do
    // consume the shared k-means++ RNG — that is why the serving WAL logs
    // them as their own record type — so they are exercised separately
    // below via identical interleavings on both sides.
    let points = drift_points(500, 500, 17);
    let mut with_probes = CachedCoresetTree::new(config(2, 40), 7).unwrap();
    let mut without = CachedCoresetTree::new(config(2, 40), 7).unwrap();
    for (i, p) in points.iter().enumerate() {
        with_probes.update(p).unwrap();
        without.update(p).unwrap();
        if i == 400 || i == 800 {
            let covered = with_probes.window_coverage(50);
            assert!(covered >= 50);
        }
    }
    let a = with_probes.query_clustering().unwrap();
    let b = without.query_clustering().unwrap();
    assert_eq!(a.centers, b.centers);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
}

#[test]
fn interleaved_window_queries_replay_deterministically() {
    // A windowed query advances the query RNG, so two streams that run the
    // *same* interleaving of updates, windowed queries and whole-stream
    // queries agree bit-for-bit at every step — the property WAL replay
    // relies on once windowed reads are logged.
    let points = drift_points(500, 500, 17);
    let mut live = CachedCoresetTree::new(config(2, 40), 7).unwrap();
    let mut replayed = CachedCoresetTree::new(config(2, 40), 7).unwrap();
    for (i, p) in points.iter().enumerate() {
        live.update(p).unwrap();
        replayed.update(p).unwrap();
        if i == 400 || i == 800 {
            let a = live.query_window_clustering(50).unwrap();
            let b = replayed.query_window_clustering(50).unwrap();
            assert_eq!(a.centers, b.centers);
            assert_eq!(a.window, b.window);
        }
    }
    let a = live.query_clustering().unwrap();
    let b = replayed.query_clustering().unwrap();
    assert_eq!(a.centers, b.centers);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
}

#[test]
fn sharded_window_coverage_matches_query_and_is_side_effect_free() {
    let points = drift_points(1400, 1400, 23);
    let mut s = ShardedStream::cc(config(2, 40), 4, 32, 7).unwrap();
    for p in &points {
        s.update(p).unwrap();
    }
    // Coverage probes are pure: any number of them leaves the subsequent
    // windowed query bit-identical to a probe-free run.
    let covered_probe = s.window_coverage(250).unwrap();
    let _ = s.window_coverage(999).unwrap();
    let published = s.query_window_published(250).unwrap();
    let info = published.window.unwrap();
    assert_eq!(info.last_points, 250);
    assert_eq!(info.covered_points, covered_probe);
    assert!(info.covered_points >= 250);

    let mut t = ShardedStream::cc(config(2, 40), 4, 32, 7).unwrap();
    for p in &points {
        t.update(p).unwrap();
    }
    let published2 = t.query_window_published(250).unwrap();
    assert_eq!(published2.centers, published.centers);
    assert_eq!(published2.window, published.window);

    // Whole-stream probes report the stream size.
    assert_eq!(s.window_coverage(u64::MAX).unwrap(), 2800);
}

#[test]
fn unsupported_backends_reject_sub_windows_but_allow_whole_stream() {
    let mut seq = SequentialKMeans::new(2).unwrap();
    for p in drift_points(50, 50, 3) {
        seq.update(&p).unwrap();
    }
    // Whole-stream window falls back to the ordinary query.
    let whole = seq.query_window_clustering(u64::MAX).unwrap();
    assert!(whole.window.is_none());
    // Sub-windows are a typed window error.
    let err = seq.query_window_clustering(10).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("window"), "unexpected error: {msg}");
}
