//! Integration tests for the skm-stream crate: consistency between CT and
//! CC, cache maintenance under irregular query patterns, and robustness of
//! the streaming algorithms to awkward stream shapes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_stream::prelude::*;

fn config(k: usize, m: usize) -> StreamConfig {
    StreamConfig::new(k)
        .with_bucket_size(m)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1)
}

fn random_point(rng: &mut ChaCha8Rng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.gen::<f64>() * 50.0).collect()
}

/// CT and CC perform identical updates (the paper: "the CC algorithm is with
/// the same update process"), so their trees must have identical shapes at
/// every point in the stream regardless of the query pattern.
#[test]
fn cc_updates_build_the_same_tree_shape_as_ct() {
    let cfg = config(3, 25);
    let mut ct = CoresetTreeClusterer::new(cfg, 77).unwrap();
    let mut cc = CachedCoresetTree::new(cfg, 77).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for i in 0..2_000 {
        let p = random_point(&mut rng, 4);
        ct.update(&p).unwrap();
        cc.update(&p).unwrap();
        // Irregular query pattern on CC only: it must not perturb updates.
        if i % 137 == 0 {
            cc.query().unwrap();
        }
        if i % 250 == 0 {
            assert_eq!(
                ct.tree().buckets_inserted(),
                cc.tree().buckets_inserted(),
                "bucket counts diverged at point {i}"
            );
            assert_eq!(ct.tree().active_levels(), cc.tree().active_levels());
            assert_eq!(ct.tree().stored_points(), cc.tree().stored_points());
            assert!(ct.tree().digit_invariant_holds());
            assert!(cc.tree().digit_invariant_holds());
        }
    }
}

/// Queries at arbitrary (including adversarial) positions never corrupt the
/// cache: its keys are always a subset of prefixsum(N) ∪ {N}.
#[test]
fn cache_keys_are_always_a_subset_of_prefixsum() {
    use skm_stream::numeric::prefixsum;
    let m = 10;
    let cfg = config(2, m);
    let mut cc = CachedCoresetTree::new(cfg, 3).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    // Query positions chosen to hit mid-bucket, bucket boundaries and long
    // gaps.
    let query_positions: Vec<usize> = vec![3, 10, 11, 25, 100, 101, 102, 640, 997, 1500, 1999];
    let mut next = 0usize;
    for i in 0..2_000usize {
        cc.update(&random_point(&mut rng, 3)).unwrap();
        if next < query_positions.len() && query_positions[next] == i + 1 {
            next += 1;
            cc.query().unwrap();
            let n = cc.tree().buckets_inserted();
            if n > 0 {
                let mut allowed = prefixsum(n, 2);
                allowed.push(n);
                for key in cc.cache().keys() {
                    assert!(
                        allowed.contains(&key),
                        "cache key {key} not allowed at N = {n} (allowed {allowed:?})"
                    );
                }
            }
        }
    }
}

/// Streams shorter than one bucket, exactly one bucket, and exactly a power
/// of r buckets are all answered correctly by every algorithm.
#[test]
fn awkward_stream_lengths_are_handled() {
    let m = 16;
    for n_points in [1usize, m - 1, m, m + 1, 4 * m, 8 * m, 8 * m + 3] {
        let cfg = config(2, m);
        let mut algorithms: Vec<Box<dyn StreamingClusterer>> = vec![
            Box::new(CoresetTreeClusterer::new(cfg, 1).unwrap()),
            Box::new(CachedCoresetTree::new(cfg, 1).unwrap()),
            Box::new(RecursiveCachedTree::new(cfg, 2, 1).unwrap()),
            Box::new(OnlineCC::new(cfg, 1.5, 1).unwrap()),
            Box::new(SequentialKMeans::new(2).unwrap()),
            Box::new(CluStream::new(cfg, 1).unwrap()),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(n_points as u64);
        for algorithm in &mut algorithms {
            for _ in 0..n_points {
                algorithm.update(&random_point(&mut rng, 2)).unwrap();
            }
            let centers = algorithm
                .query()
                .unwrap_or_else(|e| panic!("{} failed at n = {n_points}: {e}", algorithm.name()));
            assert!(
                !centers.is_empty(),
                "{} at n = {n_points}",
                algorithm.name()
            );
            assert!(centers.len() <= 2, "{} at n = {n_points}", algorithm.name());
            assert_eq!(algorithm.points_seen(), n_points as u64);
        }
    }
}

/// After a dimension-mismatch error the structures remain usable with the
/// original dimension (errors must not corrupt internal state).
#[test]
fn dimension_errors_do_not_poison_the_clusterer() {
    let cfg = config(2, 8);
    let mut cc = CachedCoresetTree::new(cfg, 9).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for _ in 0..20 {
        cc.update(&random_point(&mut rng, 3)).unwrap();
    }
    assert!(cc.update(&[1.0]).is_err());
    assert!(cc.update(&random_point(&mut rng, 5)).is_err());
    for _ in 0..20 {
        cc.update(&random_point(&mut rng, 3)).unwrap();
    }
    let centers = cc.query().unwrap();
    assert_eq!(centers.dim(), 3);
    assert_eq!(cc.points_seen(), 40);
}

/// The RCC structure built for an expected stream length keeps its memory
/// within a small multiple of CC's, even when the actual stream is shorter
/// or longer than expected.
#[test]
fn rcc_for_stream_length_memory_is_robust_to_misestimation() {
    let cfg = config(3, 30);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for (expected, actual) in [(6_000usize, 6_000usize), (6_000, 2_000), (2_000, 6_000)] {
        let mut rcc = RecursiveCachedTree::for_stream_length(cfg, 3, expected, 1).unwrap();
        let mut cc = CachedCoresetTree::new(cfg, 1).unwrap();
        for i in 0..actual {
            let p = random_point(&mut rng, 3);
            rcc.update(&p).unwrap();
            cc.update(&p).unwrap();
            if i % 100 == 99 {
                rcc.query().unwrap();
                cc.query().unwrap();
            }
        }
        assert!(
            rcc.memory_points() <= 12 * cc.memory_points(),
            "expected {expected}, actual {actual}: RCC {} vs CC {}",
            rcc.memory_points(),
            cc.memory_points()
        );
        assert!(
            rcc.memory_points() < actual,
            "RCC must not store the whole stream"
        );
    }
}

/// OnlineCC with an enormous switching threshold never falls back after its
/// first rebuild; with a threshold barely above 1 it falls back frequently.
#[test]
fn online_cc_fallback_frequency_tracks_alpha() {
    let cfg = config(3, 30);
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let stream: Vec<Vec<f64>> = (0..4_000).map(|_| random_point(&mut rng, 3)).collect();

    let mut never = OnlineCC::new(cfg, 1e9, 1).unwrap();
    let mut often = OnlineCC::new(cfg, 1.01, 1).unwrap();
    for (i, p) in stream.iter().enumerate() {
        never.update(p).unwrap();
        often.update(p).unwrap();
        if i % 50 == 49 {
            never.query().unwrap();
            often.query().unwrap();
        }
    }
    assert!(
        never.fallback_count() <= 1,
        "α = 1e9 should essentially never fall back, saw {}",
        never.fallback_count()
    );
    assert!(
        often.fallback_count() > 5,
        "α = 1.01 should fall back regularly, saw {}",
        often.fallback_count()
    );
}
