//! RCC: the recursive coreset cache (Algorithms 4–6) — the paper's second
//! contribution.
//!
//! CC still merges up to `r` coresets per query and returns a coreset whose
//! level grows like `log_r N`. RCC keeps the merge degree *high* (so levels
//! stay low) and avoids paying `r` merges per query by applying the coreset
//! cache **recursively**: the buckets within a single level of the outer
//! structure are themselves managed by a lower-order RCC structure, which
//! can produce a single coreset for them quickly.
//!
//! An order-`i` structure uses merge degree `r_i = 2^(2^i)`; the inner
//! structure attached to each level has order `i − 1` (merge degree
//! `√r_i`). At query time the structure merges only two coresets — one from
//! its cache (covering `[1, major(N, r)]`) and one produced recursively by
//! the inner structure of the lowest non-empty level — so a query touches
//! `O(ι) = O(log log N)` coresets in total (Lemma 8), and the level of the
//! result stays `O(log N / log r_ι)` = `O(1)` for `ι ≈ log log N` (Table 2).

use crate::cache::CoresetCache;
use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::driver::{extract_centers_block, extract_clustering_result, BucketBuffer};
use crate::numeric::major;
use crate::publish::ClusteringResult;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointBlock};
use skm_coreset::construct::CoresetBuilder;
use skm_coreset::coreset::Coreset;
use skm_coreset::merge::merge_coresets;

/// One level of an [`RccNode`]: the list `L_ℓ` of buckets plus (for orders
/// above 0) the recursive structure that mirrors the list's contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RccLevel {
    list: Vec<Coreset>,
    inner: Option<Box<RccNode>>,
}

impl RccLevel {
    fn new(order: u32, merge_degree: u64, builder: CoresetBuilder) -> Self {
        let inner = if order > 0 {
            Some(Box::new(RccNode::new(
                order - 1,
                inner_merge_degree(merge_degree),
                builder,
            )))
        } else {
            None
        };
        Self {
            list: Vec::new(),
            inner,
        }
    }
}

/// Merge degree of the next-lower order: `√r`, but never below 2.
fn inner_merge_degree(r: u64) -> u64 {
    let root = (r as f64).sqrt().round() as u64;
    root.max(2)
}

/// The recursive data structure `RCC(i)` of Algorithms 4–6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RccNode {
    order: u32,
    merge_degree: u64,
    builder: CoresetBuilder,
    cache: CoresetCache,
    levels: Vec<RccLevel>,
    /// Buckets inserted into *this* structure since it was (re)initialized.
    buckets_inserted: u64,
}

impl RccNode {
    fn new(order: u32, merge_degree: u64, builder: CoresetBuilder) -> Self {
        Self {
            order,
            merge_degree: merge_degree.max(2),
            builder,
            cache: CoresetCache::new(),
            levels: Vec::new(),
            buckets_inserted: 0,
        }
    }

    fn ensure_level(&mut self, level: usize) {
        while self.levels.len() <= level {
            let l = RccLevel::new(self.order, self.merge_degree, self.builder);
            self.levels.push(l);
        }
    }

    /// `RCC-Update` (Algorithm 5).
    fn insert<R: Rng + ?Sized>(&mut self, bucket: Coreset, rng: &mut R) -> Result<()> {
        self.buckets_inserted += 1;
        self.ensure_level(0);
        self.levels[0].list.push(bucket.clone());
        if let Some(inner) = &mut self.levels[0].inner {
            inner.insert(bucket, rng)?;
        }

        let r = self.merge_degree as usize;
        let mut level = 0;
        while level < self.levels.len() && self.levels[level].list.len() >= r {
            let group: Vec<Coreset> = self.levels[level].list.drain(..).collect();
            let merged = merge_coresets(&group, &self.builder, rng)?;
            self.ensure_level(level + 1);
            self.levels[level + 1].list.push(merged.clone());
            if let Some(inner) = &mut self.levels[level + 1].inner {
                inner.insert(merged, rng)?;
            }
            // Reset the emptied level's recursive structure (Algorithm 5,
            // lines 13–15).
            if self.order > 0 {
                self.levels[level].inner = Some(Box::new(RccNode::new(
                    self.order - 1,
                    inner_merge_degree(self.merge_degree),
                    self.builder,
                )));
            }
            level += 1;
        }
        Ok(())
    }

    /// `RCC-Coreset` (Algorithm 6). Returns the coreset for everything this
    /// structure has absorbed, plus the number of stored coresets that were
    /// merged (recursively) to produce it.
    fn query_coreset<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Option<(Coreset, usize)>> {
        let n = self.buckets_inserted;
        if n == 0 {
            return Ok(None);
        }
        if let Some(cached) = self.cache.lookup(n) {
            return Ok(Some((cached.clone(), 1)));
        }
        let r = self.merge_degree;
        let n1 = major(n, r);

        let (inputs, merged_count) = if n1 == 0 || !self.cache.contains(n1) {
            // Algorithm 6, cache-miss branch: query each non-empty level
            // recursively (oldest first) so the inner caches keep the number
            // of touched coresets small even when this order's cache cannot
            // help. At order 0 there is no inner structure, so the raw list
            // buckets are used (there are at most r − 1 = 1 of them per
            // level).
            let mut inputs = Vec::new();
            let mut count = 0usize;
            for level_idx in (0..self.levels.len()).rev() {
                if self.levels[level_idx].list.is_empty() {
                    continue;
                }
                let list_copy: Vec<Coreset> = self.levels[level_idx].list.clone();
                match self.levels[level_idx].inner.as_mut() {
                    Some(inner) => match inner.query_coreset(rng)? {
                        Some((coreset, inner_merged)) => {
                            inputs.push(coreset);
                            count += inner_merged;
                        }
                        None => {
                            count += list_copy.len();
                            inputs.extend(list_copy);
                        }
                    },
                    None => {
                        count += list_copy.len();
                        inputs.extend(list_copy);
                    }
                }
            }
            (inputs, count)
        } else {
            let prefix = self.cache.lookup(n1).expect("checked above").clone();
            // The suffix lives in the lowest non-empty level; use its
            // recursive structure when available so only O(1) coresets are
            // touched at this order.
            let lowest = self
                .levels
                .iter_mut()
                .find(|l| !l.list.is_empty())
                .expect("n > n1 implies a non-empty level");
            match lowest.inner.as_mut() {
                Some(inner) => match inner.query_coreset(rng)? {
                    Some((suffix, inner_merged)) => (vec![prefix, suffix], 1 + inner_merged),
                    None => {
                        let mut v = vec![prefix];
                        v.extend(lowest.list.iter().cloned());
                        let count = v.len();
                        (v, count)
                    }
                },
                None => {
                    let mut v = vec![prefix];
                    v.extend(lowest.list.iter().cloned());
                    let count = v.len();
                    (v, count)
                }
            }
        };

        if inputs.is_empty() {
            return Ok(None);
        }
        let reduced = merge_coresets(&inputs, &self.builder, rng)?;
        self.cache.insert(reduced.clone());
        self.cache.evict_stale(n, r);
        Ok(Some((reduced, merged_count)))
    }

    /// The stored coresets of this node's outer lists, oldest first
    /// (highest level down to level 0). Their spans partition
    /// `[1, buckets_inserted]` by the digit invariant, which is what the
    /// window driver needs; inner recursive structures mirror the lists'
    /// contents and are deliberately excluded (including them would count
    /// the same buckets twice).
    fn list_coresets(&self) -> Vec<&Coreset> {
        let mut out = Vec::new();
        for level in self.levels.iter().rev() {
            for c in &level.list {
                out.push(c);
            }
        }
        out
    }

    /// Points stored in lists, caches and recursive structures.
    fn stored_points(&self) -> usize {
        let lists: usize = self
            .levels
            .iter()
            .map(|l| {
                l.list.iter().map(Coreset::len).sum::<usize>()
                    + l.inner.as_ref().map_or(0, |i| i.stored_points())
            })
            .sum();
        lists + self.cache.stored_points()
    }

    fn max_list_level(&self) -> Option<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.list.is_empty())
            .map(|(i, _)| i)
            .next_back()
    }
}

/// Streaming clusterer implementing the Recursive Coreset Cache (RCC).
///
/// The whole clusterer state — including every recursive sub-structure and
/// its cache — is `Serialize`/`Deserialize`, so a snapshot restored via
/// `serde_json` continues the stream bit-identically to an uninterrupted
/// run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecursiveCachedTree {
    config: StreamConfig,
    nesting_depth: u32,
    node: RccNode,
    buffer: BucketBuffer,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
}

impl RecursiveCachedTree {
    /// Creates an RCC clusterer with nesting depth `ι` (the paper's
    /// experiments use `ι = 3`) and the default top-level merge degree
    /// `r_ι = 2^(2^ι)`.
    ///
    /// # Errors
    /// Returns an error if the configuration or nesting depth is invalid.
    pub fn new(config: StreamConfig, nesting_depth: u32, seed: u64) -> Result<Self> {
        let top = default_top_merge_degree(nesting_depth)?;
        Self::with_top_merge_degree(config, nesting_depth, top, seed)
    }

    /// Creates an RCC clusterer whose top-level merge degree is derived from
    /// the *expected* stream length, as the paper's evaluation does: with
    /// `B = ⌈expected_points / m⌉` expected base buckets, the top merge
    /// degree is `⌈√B⌉` and each inner order takes the square root of its
    /// parent (`B^{1/4}`, `B^{1/8}`, …), matching Section 5.2.
    ///
    /// # Errors
    /// Returns an error if the configuration or nesting depth is invalid.
    pub fn for_stream_length(
        config: StreamConfig,
        nesting_depth: u32,
        expected_points: usize,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        let buckets = (expected_points / config.bucket_size).max(4) as f64;
        let top = buckets.sqrt().ceil() as u64;
        Self::with_top_merge_degree(config, nesting_depth, top.max(2), seed)
    }

    /// Creates an RCC clusterer with an explicit top-level merge degree
    /// (the paper sets it to `N^{1/2}` when the stream length `N` is known
    /// in advance).
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or
    /// `top_merge_degree < 2`.
    pub fn with_top_merge_degree(
        config: StreamConfig,
        nesting_depth: u32,
        top_merge_degree: u64,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        if top_merge_degree < 2 {
            return Err(ClusteringError::InvalidParameter {
                name: "top_merge_degree",
                message: "must be at least 2".to_string(),
            });
        }
        if nesting_depth > 6 {
            return Err(ClusteringError::InvalidParameter {
                name: "nesting_depth",
                message: "nesting depths above 6 are not supported".to_string(),
            });
        }
        let builder = CoresetBuilder::new(config.k)
            .with_size(config.bucket_size)
            .with_method(config.coreset_method);
        Ok(Self {
            config,
            nesting_depth,
            node: RccNode::new(nesting_depth, top_merge_degree, builder),
            buffer: BucketBuffer::new(config.bucket_size)?,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
        })
    }

    /// The configuration this clusterer was built with.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Nesting depth `ι`.
    #[must_use]
    pub fn nesting_depth(&self) -> u32 {
        self.nesting_depth
    }

    /// Top-level merge degree `r_ι`.
    #[must_use]
    pub fn top_merge_degree(&self) -> u64 {
        self.node.merge_degree
    }

    /// Highest outer-list level currently occupied (diagnostics).
    #[must_use]
    pub fn max_outer_level(&self) -> Option<usize> {
        self.node.max_list_level()
    }

    /// The candidate points a query hands to k-means++ (RCC coreset plus
    /// the partial bucket) as a norm-cached block, together with query
    /// statistics.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when no points have arrived.
    pub fn query_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        match self.node.query_coreset(&mut self.rng)? {
            Some((coreset, merged)) => {
                let level = coreset.level();
                let mut candidates = PointBlock::from_point_set_owned(coreset.into_points());
                let mut merged = merged;
                if let Some(p) = self.buffer.partial() {
                    if !p.is_empty() {
                        // Borrowed append — no bucket-sized clone per query,
                        // and the buffered points' norms ride along.
                        candidates.extend_from_block(p)?;
                        merged += 1;
                    }
                }
                let stats = QueryStats {
                    coresets_merged: merged,
                    candidate_points: candidates.len(),
                    coreset_level: Some(level),
                    used_cache: true,
                    ran_kmeans: true,
                };
                Ok((candidates, stats))
            }
            None => {
                let candidates = self
                    .buffer
                    .partial()
                    .cloned()
                    .ok_or(ClusteringError::EmptyInput)?;
                let stats = QueryStats {
                    coresets_merged: 1,
                    candidate_points: candidates.len(),
                    coreset_level: Some(0),
                    used_cache: false,
                    ran_kmeans: true,
                };
                Ok((candidates, stats))
            }
        }
    }

    /// Candidate points for a time-scoped window over the most recent
    /// `last_points` stream points: the suffix of the top-level outer-list
    /// coresets whose spans intersect the window, plus the partial base
    /// bucket. Caches and inner recursive structures are bypassed (they
    /// summarize prefixes, not suffixes), so selection uses no RNG. The
    /// `u64` reports the exact (bucket-granular) coverage.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point and
    /// an `InvalidParameter { name: "window" }` error for invalid windows.
    pub fn query_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::driver::window_candidates_from_suffix(
            &self.node.list_coresets(),
            self.node.buckets_inserted,
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }

    /// The coverage a windowed query over the most recent `last_points`
    /// points would report, computed from span arithmetic alone (no merge,
    /// no RNG, no cache traffic). `0` before the first point.
    #[must_use]
    pub fn window_coverage(&self, last_points: u64) -> u64 {
        crate::driver::window_coverage_from_suffix(
            &self.node.list_coresets(),
            self.node.buckets_inserted,
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }
}

/// `r_ι = 2^(2^ι)` with overflow protection.
fn default_top_merge_degree(nesting_depth: u32) -> Result<u64> {
    if nesting_depth > 6 {
        return Err(ClusteringError::InvalidParameter {
            name: "nesting_depth",
            message: "nesting depths above 6 are not supported".to_string(),
        });
    }
    Ok(1u64 << (1u32 << nesting_depth))
}

impl StreamingClusterer for RecursiveCachedTree {
    fn name(&self) -> &'static str {
        "RCC"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if let Some(full_bucket) = self.buffer.push(point)? {
            let bucket_no = self.node.buckets_inserted + 1;
            let base = Coreset::base_bucket(full_bucket.into_point_set(), bucket_no);
            self.node.insert(base, &mut self.rng)?;
        }
        Ok(())
    }

    fn update_batch(&mut self, points: &[&[f64]]) -> Result<()> {
        let node = &mut self.node;
        let rng = &mut self.rng;
        self.buffer.push_batch(points, |full_bucket| {
            let bucket_no = node.buckets_inserted + 1;
            let base = Coreset::base_bucket(full_bucket.into_point_set(), bucket_no);
            node.insert(base, rng)
        })
    }

    fn query(&mut self) -> Result<Centers> {
        let (candidates, stats) = self.query_candidates()?;
        let centers = extract_centers_block(&candidates, &self.config, &mut self.rng)?;
        self.last_stats = Some(stats);
        Ok(centers)
    }

    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        let (candidates, stats) = self.query_candidates()?;
        let result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        if last_points >= self.buffer.points_seen() {
            // Whole-stream windows take the ordinary (recursive, cached)
            // query path, bit-identical to an un-windowed query.
            return self.query_clustering();
        }
        let (candidates, stats, covered) = self.query_window_candidates(last_points)?;
        let mut result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        result.window = Some(crate::publish::WindowInfo {
            last_points,
            covered_points: covered,
        });
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn memory_points(&self) -> usize {
        self.node.stored_points() + self.buffer.buffered_points()
    }

    fn points_seen(&self) -> u64 {
        self.buffer.points_seen()
    }

    fn dim(&self) -> Option<usize> {
        self.buffer.dim()
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn config(k: usize, m: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(m)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2)
    }

    fn push_random_points(rcc: &mut RecursiveCachedTree, n: usize, seed: u64) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let anchors = [[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]];
        for i in 0..n {
            let a = anchors[i % anchors.len()];
            rcc.update(&[a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()])
                .unwrap();
        }
    }

    #[test]
    fn default_merge_degrees() {
        assert_eq!(default_top_merge_degree(0).unwrap(), 2);
        assert_eq!(default_top_merge_degree(1).unwrap(), 4);
        assert_eq!(default_top_merge_degree(2).unwrap(), 16);
        assert_eq!(default_top_merge_degree(3).unwrap(), 256);
        assert!(default_top_merge_degree(7).is_err());
        assert_eq!(inner_merge_degree(16), 4);
        assert_eq!(inner_merge_degree(4), 2);
        assert_eq!(inner_merge_degree(2), 2);
    }

    #[test]
    fn query_before_any_point_is_error() {
        let mut rcc = RecursiveCachedTree::new(config(2, 20), 2, 0).unwrap();
        assert!(rcc.query().is_err());
    }

    #[test]
    fn query_with_partial_bucket_only() {
        let mut rcc = RecursiveCachedTree::new(config(2, 50), 2, 0).unwrap();
        push_random_points(&mut rcc, 7, 1);
        let centers = rcc.query().unwrap();
        assert_eq!(centers.len(), 2);
        assert_eq!(rcc.last_query_stats().unwrap().coreset_level, Some(0));
    }

    #[test]
    fn finds_clusters_with_queries_every_bucket() {
        let mut rcc = RecursiveCachedTree::new(
            StreamConfig::new(3)
                .with_bucket_size(30)
                .with_kmeans_runs(2),
            2,
            7,
        )
        .unwrap();
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let anchors = [[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]];
        for i in 0..1_800usize {
            let a = anchors[i % 3];
            rcc.update(&[a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()])
                .unwrap();
            if i % 30 == 29 {
                rcc.query().unwrap();
            }
        }
        let centers = rcc.query().unwrap();
        for anchor in [[0.5, 0.5], [40.5, 0.5], [0.5, 40.5]] {
            let closest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(closest < 2.0, "anchor {anchor:?} missed ({closest})");
        }
    }

    #[test]
    fn queries_touch_few_coresets_when_frequent() {
        // With queries after every bucket and nesting depth 2, the number of
        // coresets touched per query should stay well below the number of
        // active buckets (which is what CT would merge).
        let m = 8;
        let mut rcc = RecursiveCachedTree::with_top_merge_degree(config(2, m), 2, 8, 3).unwrap();
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut max_merged = 0usize;
        for bucket in 1..=64u64 {
            for _ in 0..m {
                rcc.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
            }
            rcc.query().unwrap();
            let merged = rcc.last_query_stats().unwrap().coresets_merged;
            max_merged = max_merged.max(merged);
            let _ = bucket;
        }
        // 2 per order * (nesting depth + 1) + partial is a generous bound.
        assert!(max_merged <= 7, "max merged {max_merged}");
    }

    #[test]
    fn coreset_level_stays_low_with_high_merge_degree() {
        // With r = 16 at the top, 64 buckets only ever occupy levels 0 and 1
        // of the outer structure, so the coreset level stays bounded by a
        // small constant (independent of the number of buckets), even though
        // every query adds one reduction on top of cached/recursive inputs.
        let m = 8;
        let mut rcc = RecursiveCachedTree::with_top_merge_degree(config(2, m), 2, 16, 4).unwrap();
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut max_level = 0u32;
        for _ in 0..64 {
            for _ in 0..m {
                rcc.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
            }
            rcc.query().unwrap();
            let level = rcc.last_query_stats().unwrap().coreset_level.unwrap();
            max_level = max_level.max(level);
        }
        assert!(
            max_level <= 8,
            "level {max_level} should stay a small constant (64 buckets inserted)"
        );
    }

    #[test]
    fn infrequent_queries_still_answer_correctly() {
        let mut rcc = RecursiveCachedTree::new(config(3, 25), 3, 11).unwrap();
        push_random_points(&mut rcc, 2_000, 13);
        let centers = rcc.query().unwrap();
        assert_eq!(centers.len(), 3);
    }

    #[test]
    fn memory_exceeds_cc_but_stays_sublinear() {
        let m = 20;
        let mut rcc = RecursiveCachedTree::new(config(2, m), 2, 17).unwrap();
        push_random_points(&mut rcc, 6_000, 19);
        assert_eq!(rcc.points_seen(), 6_000);
        assert!(
            rcc.memory_points() < 3_000,
            "memory {} not sublinear",
            rcc.memory_points()
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(RecursiveCachedTree::new(config(2, 20), 7, 0).is_err());
        assert!(RecursiveCachedTree::with_top_merge_degree(config(2, 20), 2, 1, 0).is_err());
        assert!(RecursiveCachedTree::new(StreamConfig::new(5).with_bucket_size(2), 2, 0).is_err());
    }
}
