//! Time-decayed sequential k-means (extension).
//!
//! The paper's conclusion lists "improved handling of concept drift, through
//! the use of time-decaying weights" as an open direction. This module
//! implements the natural first step: a sequential (MacQueen-style)
//! clusterer whose per-center weights decay exponentially between updates,
//! so old points gradually lose influence and the centers can follow a
//! drifting distribution much faster than the undecayed variant.
//!
//! With decay factor `λ ∈ (0, 1]`, each arriving point multiplies every
//! center's accumulated weight by `λ` before the usual MacQueen update. The
//! effective memory is `≈ 1 / (1 − λ)` points; `λ = 1` recovers the plain
//! [`crate::sequential::SequentialKMeans`] behaviour.

use crate::clusterer::{QueryStats, StreamingClusterer};
use skm_clustering::distance::nearest_center;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;

/// Floor applied to every center's effective weight after decay.
///
/// Without it, a center that goes unmatched for long enough (e.g. a stale
/// cluster on a very long drifting stream) has its weight multiplied by `λ`
/// on every arrival until it underflows to subnormals and finally to `0.0`
/// — around 70 000 points at `λ = 0.99` — at which point the MacQueen step
/// degenerates: the effective learning rate `1 / (w + 1)` saturates, the
/// center teleports wholesale onto the next point it matches, and any
/// downstream consumer dividing by the weight blows up. The floor keeps the
/// update well conditioned while still letting stale centers move quickly.
pub const MIN_CENTER_WEIGHT: f64 = 1e-8;

/// Sequential k-means with exponentially time-decayed weights.
#[derive(Debug, Clone)]
pub struct DecayedSequentialKMeans {
    k: usize,
    /// Per-point multiplicative decay applied to all center weights.
    decay: f64,
    centers: Centers,
    dim: Option<usize>,
    points_seen: u64,
}

impl DecayedSequentialKMeans {
    /// Creates a decayed sequential clusterer.
    ///
    /// # Errors
    /// Returns an error if `k == 0` or `decay` is outside `(0, 1]`.
    pub fn new(k: usize, decay: f64) -> Result<Self> {
        if k == 0 {
            return Err(ClusteringError::InvalidK { k });
        }
        if !(decay > 0.0 && decay <= 1.0) {
            return Err(ClusteringError::InvalidParameter {
                name: "decay",
                message: format!("decay must lie in (0, 1], got {decay}"),
            });
        }
        Ok(Self {
            k,
            decay,
            centers: Centers::new(1),
            dim: None,
            points_seen: 0,
        })
    }

    /// The decay factor λ.
    #[must_use]
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Effective window size `1 / (1 − λ)` (∞ for λ = 1).
    #[must_use]
    pub fn effective_window(&self) -> f64 {
        if (self.decay - 1.0).abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.decay)
        }
    }

    /// Current centers (may hold fewer than `k` before `k` points arrive).
    #[must_use]
    pub fn centers(&self) -> &Centers {
        &self.centers
    }
}

impl StreamingClusterer for DecayedSequentialKMeans {
    fn name(&self) -> &'static str {
        "DecayedSequential"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if point.is_empty() {
            return Err(ClusteringError::InvalidParameter {
                name: "point",
                message: "points must have at least one dimension".to_string(),
            });
        }
        match self.dim {
            None => {
                self.dim = Some(point.len());
                self.centers = Centers::with_capacity(point.len(), self.k);
            }
            Some(d) if d != point.len() => {
                return Err(ClusteringError::DimensionMismatch {
                    expected: d,
                    got: point.len(),
                });
            }
            Some(_) => {}
        }
        self.points_seen += 1;

        if self.centers.len() < self.k {
            self.centers.push(point, 1.0);
            return Ok(());
        }

        // Decay every center's effective mass (clamped so long streams can
        // never underflow a weight to zero), then perform the MacQueen
        // update against the (now lighter) nearest center.
        for j in 0..self.centers.len() {
            let w = self.centers.weight_mut(j);
            *w = (*w * self.decay).max(MIN_CENTER_WEIGHT);
        }
        let (idx, _) = nearest_center(point, &self.centers).expect("centers initialized");
        let w = self.centers.weight(idx);
        {
            let c = self.centers.center_mut(idx);
            for (ci, xi) in c.iter_mut().zip(point) {
                *ci = (w * *ci + xi) / (w + 1.0);
            }
        }
        *self.centers.weight_mut(idx) = w + 1.0;
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        Ok(self.centers.clone())
    }

    fn memory_points(&self) -> usize {
        self.centers.len()
    }

    fn points_seen(&self) -> u64 {
        self.points_seen
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        Some(QueryStats {
            coresets_merged: 0,
            candidate_points: self.centers.len(),
            coreset_level: None,
            used_cache: false,
            ran_kmeans: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructor_validation() {
        assert!(DecayedSequentialKMeans::new(0, 0.9).is_err());
        assert!(DecayedSequentialKMeans::new(3, 0.0).is_err());
        assert!(DecayedSequentialKMeans::new(3, 1.5).is_err());
        let ok = DecayedSequentialKMeans::new(3, 0.99).unwrap();
        assert!((ok.effective_window() - 100.0).abs() < 1e-6);
        assert!(DecayedSequentialKMeans::new(3, 1.0)
            .unwrap()
            .effective_window()
            .is_infinite());
    }

    #[test]
    fn behaves_like_sequential_before_k_points() {
        let mut d = DecayedSequentialKMeans::new(3, 0.9).unwrap();
        d.update(&[1.0]).unwrap();
        d.update(&[2.0]).unwrap();
        let centers = d.query().unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn decayed_centers_track_a_moved_cluster_faster() {
        // Phase 1: cluster near 0. Phase 2: the same cluster jumps to 100.
        // With strong decay the center follows; without decay it lags.
        let mut decayed = DecayedSequentialKMeans::new(1, 0.9).unwrap();
        let mut plain = crate::sequential::SequentialKMeans::new(1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..2_000 {
            let p = [rng.gen::<f64>()];
            decayed.update(&p).unwrap();
            plain.update(&p).unwrap();
        }
        for _ in 0..200 {
            let p = [100.0 + rng.gen::<f64>()];
            decayed.update(&p).unwrap();
            plain.update(&p).unwrap();
        }
        let decayed_center = decayed.query().unwrap().center(0)[0];
        let plain_center = plain.query().unwrap().center(0)[0];
        assert!(
            decayed_center > 90.0,
            "decayed center {decayed_center} should have followed the jump"
        );
        assert!(
            plain_center < 40.0,
            "undecayed center {plain_center} should still lag behind"
        );
    }

    #[test]
    fn decay_one_matches_plain_sequential() {
        let mut decayed = DecayedSequentialKMeans::new(2, 1.0).unwrap();
        let mut plain = crate::sequential::SequentialKMeans::new(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..500 {
            let p = [rng.gen::<f64>() * 10.0, rng.gen::<f64>()];
            decayed.update(&p).unwrap();
            plain.update(&p).unwrap();
        }
        let a = decayed.query().unwrap();
        let b = plain.query().unwrap();
        for (ca, cb) in a.iter().zip(b.iter()) {
            for (xa, xb) in ca.iter().zip(cb) {
                assert!((xa - xb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn weights_never_underflow_on_a_million_point_drift() {
        // Regression: a center that never matches has its weight multiplied
        // by λ on every arrival; over 10^6 points at λ = 0.999 that used to
        // underflow to exactly 0.0 (0.999^1e6 ≈ 10^-435), degenerating the
        // MacQueen step. The clamp keeps every weight at or above the floor.
        let mut d = DecayedSequentialKMeans::new(2, 0.999).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        d.update(&[0.0]).unwrap();
        d.update(&[100.0]).unwrap();
        // A long drifting phase that only ever feeds the low cluster.
        for _ in 0..1_000_000 {
            d.update(&[rng.gen::<f64>()]).unwrap();
        }
        for j in 0..d.centers().len() {
            let w = d.centers().weight(j);
            assert!(
                w >= MIN_CENTER_WEIGHT,
                "center {j} weight {w:e} underflowed below the floor"
            );
            assert!(d.centers().center(j)[0].is_finite());
        }
        // The stale center still reacts sanely to its next match instead of
        // dividing by a vanished weight.
        d.update(&[80.0]).unwrap();
        let revived = d.query().unwrap().center(1)[0];
        assert!(
            revived.is_finite() && (revived - 80.0).abs() < 1.0,
            "revived center landed at {revived}"
        );
    }

    #[test]
    fn error_paths() {
        let mut d = DecayedSequentialKMeans::new(2, 0.5).unwrap();
        assert!(d.query().is_err());
        d.update(&[0.0, 1.0]).unwrap();
        assert!(d.update(&[0.0]).is_err());
        assert!(d.update(&[]).is_err());
    }
}
