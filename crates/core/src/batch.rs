//! Batch k-means++ reference: stores the entire stream and clusters it from
//! scratch at query time.
//!
//! The paper uses this as the accuracy yardstick in Figure 4 ("the clustering
//! costs of the streaming algorithms are nearly the same as that of running
//! the batch algorithm, which can see the input all at once"). It is not a
//! streaming algorithm — memory grows linearly and queries are very slow —
//! but it bounds what any streaming method could hope to achieve.

use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::driver::extract_centers;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointSet};

/// The batch k-means++ (plus Lloyd refinement) reference "clusterer".
#[derive(Debug, Clone)]
pub struct BatchKMeansPP {
    config: StreamConfig,
    points: Option<PointSet>,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
}

impl BatchKMeansPP {
    /// Creates the batch reference with the given configuration and seed.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            points: None,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
        })
    }

    /// Read access to the stored points (for tests).
    #[must_use]
    pub fn stored(&self) -> Option<&PointSet> {
        self.points.as_ref()
    }
}

impl StreamingClusterer for BatchKMeansPP {
    fn name(&self) -> &'static str {
        "BatchKMeansPP"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if point.is_empty() {
            return Err(ClusteringError::InvalidParameter {
                name: "point",
                message: "points must have at least one dimension".to_string(),
            });
        }
        let points = match &mut self.points {
            Some(p) => {
                if p.dim() != point.len() {
                    return Err(ClusteringError::DimensionMismatch {
                        expected: p.dim(),
                        got: point.len(),
                    });
                }
                p
            }
            None => self.points.insert(PointSet::new(point.len())),
        };
        points.push(point, 1.0);
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        let points = self.points.as_ref().ok_or(ClusteringError::EmptyInput)?;
        let centers = extract_centers(points, &self.config, &mut self.rng)?;
        self.last_stats = Some(QueryStats {
            coresets_merged: 0,
            candidate_points: points.len(),
            coreset_level: None,
            used_cache: false,
            ran_kmeans: true,
        });
        Ok(centers)
    }

    fn memory_points(&self) -> usize {
        self.points.as_ref().map_or(0, PointSet::len)
    }

    fn points_seen(&self) -> u64 {
        self.memory_points() as u64
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use skm_clustering::cost::kmeans_cost;

    #[test]
    fn stores_every_point() {
        let mut b = BatchKMeansPP::new(StreamConfig::new(2).with_bucket_size(10), 0).unwrap();
        for i in 0..100 {
            b.update(&[f64::from(i), 0.0]).unwrap();
        }
        assert_eq!(b.memory_points(), 100);
        assert_eq!(b.points_seen(), 100);
    }

    #[test]
    fn query_before_points_is_error() {
        let mut b = BatchKMeansPP::new(StreamConfig::new(2).with_bucket_size(10), 0).unwrap();
        assert!(b.query().is_err());
    }

    #[test]
    fn clusters_blobs_near_optimally() {
        let mut b = BatchKMeansPP::new(
            StreamConfig::new(2)
                .with_bucket_size(10)
                .with_kmeans_runs(3),
            1,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut all = PointSet::new(1);
        for i in 0..500 {
            let base = if i % 2 == 0 { 0.0 } else { 100.0 };
            let p = [base + rng.gen::<f64>()];
            b.update(&p).unwrap();
            all.push(&p, 1.0);
        }
        let centers = b.query().unwrap();
        let cost = kmeans_cost(&all, &centers).unwrap();
        // Optimal cost is ~ 500 * Var(U(0,1)) ≈ 500/12 ≈ 42.
        assert!(cost < 60.0, "cost {cost}");
        assert!(b.last_query_stats().unwrap().ran_kmeans);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let mut b = BatchKMeansPP::new(StreamConfig::new(2).with_bucket_size(10), 0).unwrap();
        b.update(&[1.0, 2.0]).unwrap();
        assert!(b.update(&[1.0]).is_err());
        assert!(b.update(&[]).is_err());
    }
}
