//! OnlineCC: the hybrid of CC and Sequential k-means (Algorithm 7) — the
//! paper's third contribution.
//!
//! CC and RCC make the *coreset construction* part of a query cheap, but a
//! query still runs k-means++ on `O(m)` points, which costs `O(kdm)`.
//! OnlineCC removes even that cost from the common case: it maintains a
//! current set of cluster centers with Sequential k-means (so a query is
//! usually `O(1)` — just return them), while also feeding every point into a
//! CC structure in the background. An upper bound `φ_now` on the cost of the
//! maintained centers is updated on every arrival (Lemma 10); when a query
//! finds `φ_now > α·φ_prev` — i.e. the cheap centers have degraded by more
//! than the switching threshold `α` since the last rebuild — the query
//! *falls back* to CC: it rebuilds the coreset, reruns k-means++, and resets
//! the estimates. This keeps the answer within `O(log k)` of optimal at all
//! times (Lemma 11).

use crate::cc::CachedCoresetTree;
use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::driver::{extract_centers, extract_centers_block, extract_clustering_result};
use crate::publish::ClusteringResult;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use skm_clustering::cost::{assign, assign_block};
use skm_clustering::distance::nearest_center;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointSet};

/// Absolute slack added to the fallback threshold `φ_now > α·φ_prev`.
///
/// With a purely relative threshold, a rebuild that lands on a zero-cost
/// clustering (e.g. an all-duplicate or near-duplicate stream) sets
/// `φ_prev = 0`, after which *any* strictly positive `φ_now` — even one
/// produced by floating-point jitter — triggers a fallback on every query
/// forever, silently degrading OnlineCC into CC. The absolute term keeps
/// genuinely negligible costs on the O(1) fast path while leaving the
/// paper's switching behaviour untouched for any non-degenerate stream
/// (where `φ` values dwarf this slack).
///
/// Tradeoff: on streams whose *absolute* SSQ scale is below this slack
/// (e.g. coordinates around `1e-5`), fallbacks are suppressed until the
/// accumulated degradation itself exceeds `1e-9`. Since `φ_now` is a
/// running sum over all arrivals, that suppression is transient — the
/// relative test takes over as soon as the total degradation stops being
/// negligible in absolute terms.
const PHI_FALLBACK_EPS: f64 = 1e-9;

/// Streaming clusterer implementing the Online Coreset Cache (OnlineCC).
#[derive(Debug, Clone)]
pub struct OnlineCC {
    config: StreamConfig,
    /// Switching threshold `α > 1` (the paper's default is 1.2; Section 5.3
    /// finds 2–4 a good compromise when accuracy requirements allow it).
    alpha: f64,
    /// The CC structure processing every arriving point in the background.
    inner: CachedCoresetTree,
    /// Current cluster centers maintained by sequential updates; `None`
    /// until the initialization buffer has filled.
    centers: Option<Centers>,
    /// Buffer of the first `init_size` points used to initialize `centers`.
    init_buffer: Option<PointSet>,
    /// Number of points used for initialization (`O(k)`, default `2k`).
    init_size: usize,
    /// Clustering cost at the previous fallback to CC.
    phi_prev: f64,
    /// Upper bound on the cost of `centers` on the stream so far.
    phi_now: f64,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
    fallback_count: u64,
}

impl OnlineCC {
    /// Creates an OnlineCC clusterer with switching threshold `alpha`.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or `alpha <= 1`.
    pub fn new(config: StreamConfig, alpha: f64, seed: u64) -> Result<Self> {
        config.validate()?;
        if alpha <= 1.0 || !alpha.is_finite() {
            return Err(ClusteringError::InvalidParameter {
                name: "alpha",
                message: format!("switching threshold must be a finite value > 1, got {alpha}"),
            });
        }
        Ok(Self {
            config,
            alpha,
            inner: CachedCoresetTree::new(config, seed.wrapping_add(1))?,
            centers: None,
            init_buffer: None,
            init_size: (2 * config.k).max(config.k + 1),
            phi_prev: 0.0,
            phi_now: 0.0,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
            fallback_count: 0,
        })
    }

    /// The switching threshold `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of times a query has fallen back to the CC path.
    #[must_use]
    pub fn fallback_count(&self) -> u64 {
        self.fallback_count
    }

    /// Current upper bound on the cost of the maintained centers.
    #[must_use]
    pub fn estimated_cost(&self) -> f64 {
        self.phi_now
    }

    /// Cost recorded at the last fallback to CC.
    #[must_use]
    pub fn previous_fallback_cost(&self) -> f64 {
        self.phi_prev
    }

    /// Whether the next query would fall back to CC (used by tests and by
    /// the Figure 11 harness to count rebuilds without triggering them).
    #[must_use]
    pub fn would_fall_back(&self) -> bool {
        self.centers.is_none() || self.needs_fallback()
    }

    /// The switching test: the maintained centers have degraded by more
    /// than the threshold `α` since the last rebuild, judged with a
    /// relative-plus-absolute comparison so a zero-cost `φ_prev` cannot
    /// force a fallback on every query.
    fn needs_fallback(&self) -> bool {
        self.phi_now > self.alpha * self.phi_prev + PHI_FALLBACK_EPS
    }

    /// Initializes the sequential centers from the buffered prefix by
    /// running k-means++ (plus Lloyd refinement) on it, as in
    /// `OnlineCC-Init`.
    fn initialize_centers(&mut self, buffer: &PointSet) -> Result<()> {
        let mut centers = extract_centers(buffer, &self.config, &mut self.rng)?;
        let assignment = assign(buffer, &centers)?;
        for (j, mass) in assignment.cluster_weights.iter().enumerate() {
            // Sequential updates need a positive weight so the running
            // centroid formula is well defined.
            *centers.weight_mut(j) = mass.max(1.0);
        }
        self.phi_prev = assignment.cost;
        self.phi_now = assignment.cost;
        self.centers = Some(centers);
        Ok(())
    }

    /// Rebuilds the centers from the CC coreset (the "fall back to CC"
    /// branch of `OnlineCC-Query`).
    fn fall_back(&mut self) -> Result<Centers> {
        let (candidates, mut stats) = self.inner.query_candidates()?;
        let mut centers = extract_centers_block(&candidates, &self.config, &mut self.rng)?;
        let assignment = assign_block(&candidates, &centers)?;
        for (j, mass) in assignment.cluster_weights.iter().enumerate() {
            *centers.weight_mut(j) = mass.max(1.0);
        }
        self.phi_prev = assignment.cost;
        self.phi_now = self.phi_prev / (1.0 - self.config.epsilon);
        self.centers = Some(centers.clone());
        self.fallback_count += 1;
        stats.ran_kmeans = true;
        self.last_stats = Some(stats);
        Ok(centers)
    }
}

impl StreamingClusterer for OnlineCC {
    fn name(&self) -> &'static str {
        "OnlineCC"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        // Every point also flows into the background CC structure.
        self.inner.update(point)?;

        match &mut self.centers {
            None => {
                let buffer = match &mut self.init_buffer {
                    Some(b) => {
                        if b.dim() != point.len() {
                            return Err(ClusteringError::DimensionMismatch {
                                expected: b.dim(),
                                got: point.len(),
                            });
                        }
                        b
                    }
                    None => self
                        .init_buffer
                        .insert(PointSet::with_capacity(point.len(), self.init_size)),
                };
                buffer.push(point, 1.0);
                if buffer.len() >= self.init_size {
                    let buffer = self.init_buffer.take().expect("just inserted");
                    self.initialize_centers(&buffer)?;
                }
            }
            Some(centers) => {
                let (idx, d2) = nearest_center(point, centers).expect("k >= 1 centers");
                self.phi_now += d2;
                let w = centers.weight(idx);
                {
                    let c = centers.center_mut(idx);
                    for (ci, xi) in c.iter_mut().zip(point) {
                        *ci = (w * *ci + xi) / (w + 1.0);
                    }
                }
                *centers.weight_mut(idx) = w + 1.0;
            }
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        Ok(self.query_clustering()?.centers)
    }

    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        if self.inner.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        let points_seen = self.inner.points_seen();
        match &self.centers {
            // Not yet initialized (fewer than init_size points): answer from
            // the CC structure directly so early queries still succeed.
            None => {
                let (candidates, mut stats) = self.inner.query_candidates()?;
                stats.ran_kmeans = true;
                let result = extract_clustering_result(
                    &candidates,
                    stats,
                    points_seen,
                    &self.config,
                    &mut self.rng,
                )?;
                self.last_stats = Some(result.stats);
                Ok(result)
            }
            Some(current) => {
                if self.needs_fallback() {
                    let centers = self.fall_back()?;
                    // `fall_back` just reset `phi_now` to the rebuilt
                    // centers' (epsilon-corrected) coreset cost.
                    Ok(ClusteringResult {
                        centers,
                        cost: self.phi_now,
                        points_seen,
                        stats: self.last_stats.unwrap_or_default(),
                        window: None,
                    })
                } else {
                    // Fast path: O(1) — return the sequentially maintained
                    // centers; `phi_now` is the running cost upper bound.
                    let centers = current.clone();
                    let stats = QueryStats {
                        coresets_merged: 0,
                        candidate_points: centers.len(),
                        coreset_level: None,
                        used_cache: false,
                        ran_kmeans: false,
                    };
                    self.last_stats = Some(stats);
                    Ok(ClusteringResult {
                        centers,
                        cost: self.phi_now,
                        points_seen,
                        stats,
                        window: None,
                    })
                }
            }
        }
    }

    fn memory_points(&self) -> usize {
        let init = self.init_buffer.as_ref().map_or(0, PointSet::len);
        let centers = self.centers.as_ref().map_or(0, Centers::len);
        self.inner.memory_points() + init + centers
    }

    fn points_seen(&self) -> u64 {
        self.inner.points_seen()
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use skm_clustering::cost::kmeans_cost;

    fn config(k: usize, m: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(m)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(3)
    }

    fn blob_stream(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let anchors = [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]];
        (0..n)
            .map(|i| {
                let a = anchors[i % 3];
                [a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()]
            })
            .collect()
    }

    #[test]
    fn invalid_alpha_is_rejected() {
        assert!(OnlineCC::new(config(3, 60), 1.0, 0).is_err());
        assert!(OnlineCC::new(config(3, 60), 0.5, 0).is_err());
        assert!(OnlineCC::new(config(3, 60), f64::NAN, 0).is_err());
        assert!(OnlineCC::new(config(3, 60), 1.2, 0).is_ok());
    }

    #[test]
    fn query_before_points_is_error() {
        let mut o = OnlineCC::new(config(3, 60), 1.2, 0).unwrap();
        assert!(o.query().is_err());
    }

    #[test]
    fn early_queries_work_before_initialization() {
        let mut o = OnlineCC::new(config(3, 60), 1.2, 0).unwrap();
        for p in blob_stream(4, 1) {
            o.update(&p).unwrap();
        }
        let centers = o.query().unwrap();
        assert!(centers.len() <= 3);
    }

    #[test]
    fn fast_path_answers_in_o1_after_initialization() {
        let mut o = OnlineCC::new(config(3, 30), 4.0, 7).unwrap();
        for p in blob_stream(600, 2) {
            o.update(&p).unwrap();
        }
        // Warm up with one query (may fall back), then the cost estimate is
        // fresh and subsequent queries should take the fast path.
        o.query().unwrap();
        o.query().unwrap();
        let stats = o.last_query_stats().unwrap();
        assert!(!stats.ran_kmeans, "expected the O(1) fast path");
    }

    #[test]
    fn falls_back_when_cost_degrades() {
        // Feed one tight cluster, rebuild, then feed a brand-new faraway
        // cluster: the running cost estimate explodes and the next query
        // must fall back to CC.
        let mut o = OnlineCC::new(config(2, 30), 1.2, 9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..300 {
            o.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
        }
        o.query().unwrap();
        let fallbacks_before = o.fallback_count();
        for _ in 0..300 {
            o.update(&[500.0 + rng.gen::<f64>(), 500.0 + rng.gen::<f64>()])
                .unwrap();
        }
        o.query().unwrap();
        assert!(
            o.fallback_count() > fallbacks_before,
            "expected a fallback after the distribution shifted"
        );
    }

    #[test]
    fn lemma_10_phi_now_upper_bounds_true_cost() {
        let mut o = OnlineCC::new(config(3, 30), 2.0, 11).unwrap();
        let stream = blob_stream(900, 4);
        let mut all = PointSet::new(2);
        for p in &stream {
            o.update(p).unwrap();
            all.push(p, 1.0);
        }
        // Trigger at least one rebuild so phi_now is based on a coreset.
        let centers = o.query().unwrap();
        let true_cost = kmeans_cost(&all, &centers).unwrap();
        // phi_now is an upper bound up to the coreset approximation; allow a
        // 25% slack for the (1 - eps) correction and sampling noise.
        assert!(
            o.estimated_cost() * 1.25 >= true_cost,
            "phi_now = {} should upper-bound true cost {}",
            o.estimated_cost(),
            true_cost
        );
    }

    #[test]
    fn accuracy_is_comparable_to_cc() {
        let stream = blob_stream(3_000, 5);
        let mut all = PointSet::new(2);
        for p in &stream {
            all.push(p, 1.0);
        }

        let mut online = OnlineCC::new(config(3, 60), 1.2, 13).unwrap();
        let mut cc = CachedCoresetTree::new(config(3, 60), 13).unwrap();
        for p in &stream {
            online.update(p).unwrap();
            cc.update(p).unwrap();
        }
        let online_cost = kmeans_cost(&all, &online.query().unwrap()).unwrap();
        let cc_cost = kmeans_cost(&all, &cc.query().unwrap()).unwrap();
        // Allow a factor-3 band; on well-separated blobs both algorithms
        // find the optimal structure and the costs are nearly identical.
        assert!(
            online_cost <= 3.0 * cc_cost + 1e-9,
            "OnlineCC cost {online_cost} much worse than CC cost {cc_cost}"
        );
    }

    #[test]
    fn higher_alpha_causes_fewer_fallbacks() {
        let stream = blob_stream(2_000, 6);
        let mut strict = OnlineCC::new(config(3, 40), 1.1, 17).unwrap();
        let mut loose = OnlineCC::new(config(3, 40), 8.0, 17).unwrap();
        for (i, p) in stream.iter().enumerate() {
            strict.update(p).unwrap();
            loose.update(p).unwrap();
            if i % 50 == 49 {
                strict.query().unwrap();
                loose.query().unwrap();
            }
        }
        assert!(
            loose.fallback_count() <= strict.fallback_count(),
            "loose α fell back {} times, strict α {} times",
            loose.fallback_count(),
            strict.fallback_count()
        );
    }

    #[test]
    fn duplicate_stream_does_not_fall_back_forever() {
        // Regression: a (near-)duplicate stream drives every clustering
        // cost to ~0, so `phi_prev = 0` after the first rebuild. With a
        // purely relative threshold, any strictly positive `phi_now` —
        // here, femtoscale floating-point jitter — then forced a fallback
        // on EVERY query, silently turning OnlineCC into CC. The
        // relative-plus-absolute threshold keeps these queries on the O(1)
        // fast path.
        let mut o = OnlineCC::new(config(2, 20), 1.2, 21).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let anchors = [[0.0, 0.0], [1.0, 0.0]];
        let feed = |o: &mut OnlineCC, n: usize, rng: &mut ChaCha8Rng| {
            for i in 0..n {
                let a = anchors[i % 2];
                // Duplicates up to ~1e-9 jitter: every cost is ~1e-18.
                o.update(&[a[0] + rng.gen::<f64>() * 1e-9, a[1]]).unwrap();
            }
        };
        feed(&mut o, 40, &mut rng);
        o.query().unwrap();
        for _ in 0..10 {
            feed(&mut o, 50, &mut rng);
            o.query().unwrap();
        }
        assert_eq!(
            o.fallback_count(),
            0,
            "negligible-cost stream must stay on the fast path"
        );
        assert!(!o.last_query_stats().unwrap().ran_kmeans);
        assert!(!o.would_fall_back());
    }

    #[test]
    fn memory_tracks_inner_cc() {
        let mut o = OnlineCC::new(config(3, 30), 1.2, 19).unwrap();
        for p in blob_stream(1_200, 7) {
            o.update(&p).unwrap();
        }
        o.query().unwrap();
        // OnlineCC memory = CC memory + k centers (Table 4 shows them nearly
        // identical).
        assert!(o.memory_points() >= o.inner.memory_points());
        assert!(o.memory_points() <= o.inner.memory_points() + 3 + 6);
        assert_eq!(o.points_seen(), 1_200);
    }
}
