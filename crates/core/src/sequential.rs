//! Sequential k-means (MacQueen, 1967) — the "online Lloyd's" baseline.
//!
//! This is the earliest streaming k-means method and is still widely used in
//! practice (e.g. Apache Spark MLlib). It keeps exactly `k` centers and, for
//! every arriving point, moves the nearest center to the weighted centroid
//! of itself and the new point. Updates and queries are extremely fast
//! (`O(kd)` and `O(1)` respectively), but there is **no guarantee** on the
//! clustering quality, and on skewed data (the paper's Intrusion dataset)
//! the cost can be orders of magnitude worse than the coreset-based
//! algorithms — which is exactly what Figure 4 shows.
//!
//! Following the paper's experimental setup, the initial centers are the
//! first `k` points of the stream (not random Gaussians), which guarantees
//! no cluster starts empty.

use crate::clusterer::{QueryStats, StreamingClusterer};
use skm_clustering::distance::nearest_center;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;

/// The sequential (MacQueen) k-means clusterer.
#[derive(Debug, Clone)]
pub struct SequentialKMeans {
    k: usize,
    centers: Centers,
    points_seen: u64,
    dim: Option<usize>,
    /// Running upper estimate of the clustering cost (sum of squared
    /// distances of each point to the center it was assigned to at arrival
    /// time). OnlineCC uses the same bookkeeping; exposing it here lets the
    /// harness plot it too.
    running_cost: f64,
}

impl SequentialKMeans {
    /// Creates a sequential k-means clusterer for `k` clusters.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidK`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(ClusteringError::InvalidK { k });
        }
        Ok(Self {
            k,
            centers: Centers::new(1),
            points_seen: 0,
            dim: None,
            running_cost: 0.0,
        })
    }

    /// The number of clusters `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Running (assignment-time) cost accumulated so far.
    #[must_use]
    pub fn running_cost(&self) -> f64 {
        self.running_cost
    }

    /// Current centers without copying (may hold fewer than `k` centers if
    /// fewer than `k` points have been observed).
    #[must_use]
    pub fn centers(&self) -> &Centers {
        &self.centers
    }
}

impl StreamingClusterer for SequentialKMeans {
    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if point.is_empty() {
            return Err(ClusteringError::InvalidParameter {
                name: "point",
                message: "points must have at least one dimension".to_string(),
            });
        }
        match self.dim {
            None => {
                self.dim = Some(point.len());
                self.centers = Centers::with_capacity(point.len(), self.k);
            }
            Some(d) if d != point.len() => {
                return Err(ClusteringError::DimensionMismatch {
                    expected: d,
                    got: point.len(),
                });
            }
            Some(_) => {}
        }
        self.points_seen += 1;

        // Initialization phase: the first k points become the centers.
        if self.centers.len() < self.k {
            self.centers.push(point, 1.0);
            return Ok(());
        }

        // One step of online Lloyd: move the nearest center toward the point.
        let (idx, d2) = nearest_center(point, &self.centers).expect("centers initialized");
        self.running_cost += d2;
        let w = self.centers.weight(idx);
        {
            let c = self.centers.center_mut(idx);
            for (ci, xi) in c.iter_mut().zip(point) {
                *ci = (w * *ci + xi) / (w + 1.0);
            }
        }
        *self.centers.weight_mut(idx) = w + 1.0;
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        Ok(self.centers.clone())
    }

    fn memory_points(&self) -> usize {
        self.centers.len()
    }

    fn points_seen(&self) -> u64 {
        self.points_seen
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        Some(QueryStats {
            coresets_merged: 0,
            candidate_points: self.centers.len(),
            coreset_level: None,
            used_cache: false,
            ran_kmeans: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_zero_k() {
        assert!(SequentialKMeans::new(0).is_err());
    }

    #[test]
    fn query_before_points_is_error() {
        let mut s = SequentialKMeans::new(3).unwrap();
        assert!(s.query().is_err());
    }

    #[test]
    fn first_k_points_become_centers() {
        let mut s = SequentialKMeans::new(3).unwrap();
        s.update(&[0.0, 0.0]).unwrap();
        s.update(&[1.0, 0.0]).unwrap();
        let centers = s.query().unwrap();
        assert_eq!(centers.len(), 2); // only 2 points seen so far
        s.update(&[2.0, 0.0]).unwrap();
        let centers = s.query().unwrap();
        assert_eq!(centers.len(), 3);
        assert_eq!(centers.center(2), &[2.0, 0.0]);
    }

    #[test]
    fn center_moves_toward_assigned_points() {
        let mut s = SequentialKMeans::new(2).unwrap();
        s.update(&[0.0]).unwrap();
        s.update(&[10.0]).unwrap();
        // Two more points near 0 should drag the first center toward them
        // without touching the second.
        s.update(&[1.0]).unwrap();
        s.update(&[2.0]).unwrap();
        let centers = s.query().unwrap();
        assert!((centers.center(0)[0] - 1.0).abs() < 1e-9); // (0 + 1 + 2) / 3
        assert_eq!(centers.center(1), &[10.0]);
        assert_eq!(centers.weight(0), 3.0);
        assert_eq!(centers.weight(1), 1.0);
    }

    #[test]
    fn tracks_clusters_on_separated_data() {
        let mut s = SequentialKMeans::new(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for i in 0..2_000 {
            let base = if i % 2 == 0 { 0.0 } else { 100.0 };
            s.update(&[base + rng.gen::<f64>()]).unwrap();
        }
        let centers = s.query().unwrap();
        let mut xs: Vec<f64> = centers.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] - 0.5).abs() < 0.3, "low center at {}", xs[0]);
        assert!((xs[1] - 100.5).abs() < 0.3, "high center at {}", xs[1]);
    }

    #[test]
    fn memory_is_exactly_k_centers() {
        let mut s = SequentialKMeans::new(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            s.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
        }
        assert_eq!(s.memory_points(), 5);
        assert_eq!(s.points_seen(), 500);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let mut s = SequentialKMeans::new(2).unwrap();
        s.update(&[1.0, 2.0]).unwrap();
        assert!(s.update(&[1.0]).is_err());
        assert!(s.update(&[]).is_err());
    }

    #[test]
    fn running_cost_is_monotone() {
        let mut s = SequentialKMeans::new(2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut last = 0.0;
        for _ in 0..200 {
            s.update(&[rng.gen::<f64>() * 10.0]).unwrap();
            assert!(s.running_cost() >= last);
            last = s.running_cost();
        }
        assert!(last > 0.0);
    }
}
