//! CT: the plain r-way coreset-tree streaming clusterer (streamkm++ when
//! `r = 2`).
//!
//! This is the state-of-the-art baseline the paper improves upon. Updates
//! are cheap (amortized `O(dm)` per point, Lemma 3), but a query must union
//! **all** active buckets of the tree — up to `(r−1)·log_r N` coresets — and
//! then run k-means++ on the union, which makes queries expensive when they
//! are frequent.

use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::coreset_tree::CoresetTree;
use crate::driver::{extract_centers_block, extract_clustering_result, BucketBuffer};
use crate::publish::ClusteringResult;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointBlock};

/// Streaming clusterer built on the plain r-way coreset tree (Algorithm 2).
///
/// With the default merge degree `r = 2` and bucket size `20·k` this is the
/// streamkm++ configuration used throughout the paper's evaluation.
///
/// The whole clusterer state — configuration, tree, partial bucket and RNG
/// position — is `Serialize`/`Deserialize`, so a snapshot restored via
/// `serde_json` continues the stream bit-identically to an uninterrupted
/// run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoresetTreeClusterer {
    config: StreamConfig,
    tree: CoresetTree,
    buffer: BucketBuffer,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
}

impl CoresetTreeClusterer {
    /// Creates a CT clusterer with the given configuration and RNG seed.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tree: CoresetTree::new(&config)?,
            buffer: BucketBuffer::new(config.bucket_size)?,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
        })
    }

    /// The configuration this clusterer was built with.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Read access to the underlying coreset tree (used by tests and the
    /// Table 1 reproduction).
    #[must_use]
    pub fn tree(&self) -> &CoresetTree {
        &self.tree
    }

    /// The candidate points a query would hand to k-means++ (as a
    /// norm-cached block): the union of every active tree bucket plus the
    /// partially filled base bucket, whose update-time norm cache is reused
    /// verbatim.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when no points have arrived.
    pub fn query_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        let dim = self.buffer.dim().unwrap_or(1);
        let (mut union, mut merged, max_level) = self.tree.union_all_block(dim);
        if let Some(partial) = self.buffer.partial() {
            if !partial.is_empty() {
                // Append the borrowed partial bucket directly — no
                // bucket-sized clone, and its cached norms ride along.
                union.extend_from_block(partial)?;
                merged += 1;
            }
        }
        let stats = QueryStats {
            coresets_merged: merged,
            candidate_points: union.len(),
            coreset_level: Some(max_level),
            used_cache: false,
            ran_kmeans: true,
        };
        Ok((union, stats))
    }

    /// Candidate points for a time-scoped window over the most recent
    /// `last_points` stream points: the suffix of active tree buckets whose
    /// spans intersect the window, plus the partial base bucket. The `u64`
    /// reports the exact (bucket-granular) coverage. See
    /// [`StreamingClusterer::query_window_clustering`].
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point and
    /// an `InvalidParameter { name: "window" }` error for invalid windows.
    pub fn query_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::driver::window_candidates_from_suffix(
            &self.tree.active_coresets(),
            self.tree.buckets_inserted(),
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }

    /// The coverage a windowed query over the most recent `last_points`
    /// points would report, computed from span arithmetic alone (no merge,
    /// no RNG, no state change). `0` before the first point.
    #[must_use]
    pub fn window_coverage(&self, last_points: u64) -> u64 {
        crate::driver::window_coverage_from_suffix(
            &self.tree.active_coresets(),
            self.tree.buckets_inserted(),
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }
}

impl StreamingClusterer for CoresetTreeClusterer {
    fn name(&self) -> &'static str {
        "CT"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if let Some(full_bucket) = self.buffer.push(point)? {
            // The block's coordinate and weight buffers move into the tree
            // without copying; only the norm cache is dropped.
            self.tree
                .insert_bucket(full_bucket.into_point_set(), &mut self.rng)?;
        }
        Ok(())
    }

    fn update_batch(&mut self, points: &[&[f64]]) -> Result<()> {
        let tree = &mut self.tree;
        let rng = &mut self.rng;
        self.buffer.push_batch(points, |full_bucket| {
            tree.insert_bucket(full_bucket.into_point_set(), rng)
        })
    }

    fn query(&mut self) -> Result<Centers> {
        let (candidates, stats) = self.query_candidates()?;
        let centers = extract_centers_block(&candidates, &self.config, &mut self.rng)?;
        self.last_stats = Some(stats);
        Ok(centers)
    }

    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        let (candidates, stats) = self.query_candidates()?;
        let result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        if last_points >= self.buffer.points_seen() {
            // Whole-stream windows take the ordinary query path, so the
            // answer (and the RNG trajectory) is bit-identical to an
            // un-windowed query.
            return self.query_clustering();
        }
        let (candidates, stats, covered) = self.query_window_candidates(last_points)?;
        let mut result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        result.window = Some(crate::publish::WindowInfo {
            last_points,
            covered_points: covered,
        });
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn memory_points(&self) -> usize {
        self.tree.stored_points() + self.buffer.buffered_points()
    }

    fn points_seen(&self) -> u64 {
        self.buffer.points_seen()
    }

    fn dim(&self) -> Option<usize> {
        self.buffer.dim()
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    fn feed_clusters(clusterer: &mut impl StreamingClusterer, n: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let anchors = [[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]];
        for i in 0..n {
            let a = anchors[i % anchors.len()];
            let p = [a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()];
            clusterer.update(&p).unwrap();
        }
    }

    #[test]
    fn query_before_any_point_is_error() {
        let mut ct =
            CoresetTreeClusterer::new(StreamConfig::new(3).with_bucket_size(30), 1).unwrap();
        assert!(ct.query().is_err());
    }

    #[test]
    fn query_with_only_partial_bucket_works() {
        let mut ct =
            CoresetTreeClusterer::new(StreamConfig::new(2).with_bucket_size(100), 1).unwrap();
        feed_clusters(&mut ct, 10, 0);
        let centers = ct.query().unwrap();
        assert_eq!(centers.len(), 2);
        let stats = ct.last_query_stats().unwrap();
        assert_eq!(stats.coresets_merged, 1);
        assert_eq!(stats.candidate_points, 10);
    }

    #[test]
    fn finds_well_separated_clusters() {
        let config = StreamConfig::new(3)
            .with_bucket_size(60)
            .with_kmeans_runs(3);
        let mut ct = CoresetTreeClusterer::new(config, 7).unwrap();
        feed_clusters(&mut ct, 3_000, 1);
        let centers = ct.query().unwrap();
        assert_eq!(centers.len(), 3);
        // Each anchor must have a center within distance 2.
        for anchor in [[0.5, 0.5], [30.5, 0.5], [0.5, 30.5]] {
            let closest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(
                closest < 2.0,
                "anchor {anchor:?} has no nearby center ({closest})"
            );
        }
    }

    #[test]
    fn memory_stays_sublinear() {
        let config = StreamConfig::new(2).with_bucket_size(40);
        let mut ct = CoresetTreeClusterer::new(config, 3).unwrap();
        feed_clusters(&mut ct, 8_000, 2);
        assert_eq!(ct.points_seen(), 8_000);
        // 8000 points / 40 per bucket = 200 buckets; the tree keeps at most
        // (r-1) * m * (log2(200)+1) ≈ 40 * 9 = 360 points.
        assert!(
            ct.memory_points() <= 400,
            "memory {} points is too large",
            ct.memory_points()
        );
    }

    #[test]
    fn stats_reflect_tree_shape() {
        let config = StreamConfig::new(2)
            .with_bucket_size(10)
            .with_kmeans_runs(1);
        let mut ct = CoresetTreeClusterer::new(config, 5).unwrap();
        // 70 points = 7 full buckets = (1,1,1)_2 -> 3 active coresets, no partial.
        feed_clusters(&mut ct, 70, 3);
        ct.query().unwrap();
        let stats = ct.last_query_stats().unwrap();
        assert_eq!(stats.coresets_merged, 3);
        assert_eq!(stats.coreset_level, Some(2));
        assert!(!stats.used_cache);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut ct =
            CoresetTreeClusterer::new(StreamConfig::new(2).with_bucket_size(30), 1).unwrap();
        ct.update(&[1.0, 2.0]).unwrap();
        assert!(ct.update(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = StreamConfig::new(5).with_bucket_size(2);
        assert!(CoresetTreeClusterer::new(bad, 0).is_err());
    }
}
