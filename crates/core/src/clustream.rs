//! CluStream-style micro-cluster baseline (extension).
//!
//! The paper's related-work section discusses CluStream (Aggarwal et al.,
//! VLDB 2003), which "constructs micro-clusters that summarize subsets of
//! the stream, and further applies a weighted k-means algorithm on the
//! micro-clusters" — and notes that such methods also pay a non-trivial
//! cost at query time. This module implements the online half of CluStream
//! as an additional baseline for the benchmark harness:
//!
//! * A fixed budget of `q` micro-clusters, each a cluster-feature vector
//!   `(n, Σx, Σx²)` from which centroid and RMS radius are derived.
//! * A new point is absorbed by the nearest micro-cluster if it falls within
//!   `boundary_factor ×` that cluster's RMS radius; otherwise a new
//!   micro-cluster is created and, to stay within budget, the two closest
//!   existing micro-clusters are merged.
//! * A query runs weighted k-means++ (plus Lloyd) over the micro-cluster
//!   centroids, weighted by their point counts.

use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::driver::extract_centers;
use crate::publish::ClusteringResult;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use skm_clustering::distance::squared_distance;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointSet};

/// One micro-cluster: a cluster feature (CF) vector.
#[derive(Debug, Clone)]
struct MicroCluster {
    /// Number of points absorbed.
    count: f64,
    /// Per-dimension linear sum `Σ x`.
    linear_sum: Vec<f64>,
    /// Sum of squared norms `Σ ‖x‖²` (sufficient for the RMS radius).
    squared_norm_sum: f64,
    /// Arrival index (1-based) of the most recent point absorbed; merges
    /// keep the max. This is the CluStream temporal component reduced to
    /// what time-scoped window queries need: selecting every micro-cluster
    /// that can contain a window point.
    last_update: u64,
}

impl MicroCluster {
    fn from_point(point: &[f64], now: u64) -> Self {
        Self {
            count: 1.0,
            linear_sum: point.to_vec(),
            squared_norm_sum: point.iter().map(|x| x * x).sum(),
            last_update: now,
        }
    }

    fn centroid(&self) -> Vec<f64> {
        self.linear_sum.iter().map(|s| s / self.count).collect()
    }

    /// Root-mean-square deviation of absorbed points from the centroid.
    fn rms_radius(&self) -> f64 {
        let centroid_norm2: f64 = self
            .linear_sum
            .iter()
            .map(|s| (s / self.count) * (s / self.count))
            .sum();
        let variance = (self.squared_norm_sum / self.count - centroid_norm2).max(0.0);
        variance.sqrt()
    }

    fn absorb(&mut self, point: &[f64], now: u64) {
        self.count += 1.0;
        for (s, x) in self.linear_sum.iter_mut().zip(point) {
            *s += x;
        }
        self.squared_norm_sum += point.iter().map(|x| x * x).sum::<f64>();
        self.last_update = now;
    }

    fn merge(&mut self, other: &MicroCluster) {
        self.count += other.count;
        for (s, o) in self.linear_sum.iter_mut().zip(&other.linear_sum) {
            *s += o;
        }
        self.squared_norm_sum += other.squared_norm_sum;
        self.last_update = self.last_update.max(other.last_update);
    }
}

/// CluStream-style streaming clusterer.
#[derive(Debug, Clone)]
pub struct CluStream {
    config: StreamConfig,
    /// Maximum number of micro-clusters kept online.
    max_micro_clusters: usize,
    /// Multiplier on the RMS radius used as the absorption boundary.
    boundary_factor: f64,
    micro_clusters: Vec<MicroCluster>,
    points_seen: u64,
    dim: Option<usize>,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
}

impl CluStream {
    /// Creates a CluStream baseline. The micro-cluster budget defaults to
    /// `10·k` (the factor recommended by the CluStream paper) and the
    /// boundary factor to 2.0.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            max_micro_clusters: 10 * config.k,
            boundary_factor: 2.0,
            micro_clusters: Vec::new(),
            points_seen: 0,
            dim: None,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
        })
    }

    /// Overrides the micro-cluster budget.
    #[must_use]
    pub fn with_max_micro_clusters(mut self, budget: usize) -> Self {
        self.max_micro_clusters = budget.max(self.config.k);
        self
    }

    /// Overrides the absorption boundary factor.
    #[must_use]
    pub fn with_boundary_factor(mut self, factor: f64) -> Self {
        self.boundary_factor = factor.max(0.0);
        self
    }

    /// Current number of micro-clusters.
    #[must_use]
    pub fn micro_cluster_count(&self) -> usize {
        self.micro_clusters.len()
    }

    /// Index of the micro-cluster whose centroid is nearest to `point`.
    fn nearest_micro_cluster(&self, point: &[f64]) -> Option<(usize, f64)> {
        let mut best = None;
        for (i, mc) in self.micro_clusters.iter().enumerate() {
            let d2 = squared_distance(point, &mc.centroid());
            match best {
                Some((_, bd)) if bd <= d2 => {}
                _ => best = Some((i, d2)),
            }
        }
        best
    }

    /// Merges the two closest micro-clusters to free one budget slot.
    fn merge_closest_pair(&mut self) {
        if self.micro_clusters.len() < 2 {
            return;
        }
        let mut best = (0usize, 1usize, f64::INFINITY);
        let centroids: Vec<Vec<f64>> = self
            .micro_clusters
            .iter()
            .map(MicroCluster::centroid)
            .collect();
        for i in 0..centroids.len() {
            for j in (i + 1)..centroids.len() {
                let d2 = squared_distance(&centroids[i], &centroids[j]);
                if d2 < best.2 {
                    best = (i, j, d2);
                }
            }
        }
        let (i, j, _) = best;
        let absorbed = self.micro_clusters.swap_remove(j);
        self.micro_clusters[i].merge(&absorbed);
    }

    /// Weighted summary of the current micro-clusters (centroid + count).
    fn summary(&self) -> PointSet {
        let dim = self.dim.unwrap_or(1);
        let mut set = PointSet::with_capacity(dim, self.micro_clusters.len());
        for mc in &self.micro_clusters {
            set.push(&mc.centroid(), mc.count);
        }
        set
    }
}

impl StreamingClusterer for CluStream {
    fn name(&self) -> &'static str {
        "CluStream"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if point.is_empty() {
            return Err(ClusteringError::InvalidParameter {
                name: "point",
                message: "points must have at least one dimension".to_string(),
            });
        }
        match self.dim {
            None => self.dim = Some(point.len()),
            Some(d) if d != point.len() => {
                return Err(ClusteringError::DimensionMismatch {
                    expected: d,
                    got: point.len(),
                });
            }
            Some(_) => {}
        }
        self.points_seen += 1;

        if let Some((idx, d2)) = self.nearest_micro_cluster(point) {
            let mc = &self.micro_clusters[idx];
            let boundary = if mc.count > 1.0 {
                self.boundary_factor * mc.rms_radius()
            } else {
                // A singleton has no radius of its own; CluStream uses the
                // distance to the closest *other* micro-cluster as a proxy.
                // Half that gap keeps a lone seed from swallowing points that
                // belong to a different cluster. With no other micro-cluster
                // yet, the boundary is zero and a new micro-cluster is
                // created instead.
                let own_centroid = mc.centroid();
                let nearest_other = self
                    .micro_clusters
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != idx)
                    .map(|(_, other)| squared_distance(&own_centroid, &other.centroid()).sqrt())
                    .fold(f64::INFINITY, f64::min);
                if nearest_other.is_finite() {
                    0.5 * nearest_other
                } else {
                    0.0
                }
            };
            if boundary > 0.0 && d2.sqrt() <= boundary {
                let now = self.points_seen;
                self.micro_clusters[idx].absorb(point, now);
                return Ok(());
            }
        }
        // Start a new micro-cluster; stay within budget by merging the
        // closest pair.
        self.micro_clusters
            .push(MicroCluster::from_point(point, self.points_seen));
        if self.micro_clusters.len() > self.max_micro_clusters {
            self.merge_closest_pair();
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        let summary = self.summary();
        let centers = extract_centers(&summary, &self.config, &mut self.rng)?;
        self.last_stats = Some(QueryStats {
            coresets_merged: 0,
            candidate_points: summary.len(),
            coreset_level: None,
            used_cache: false,
            ran_kmeans: true,
        });
        Ok(centers)
    }

    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        if last_points >= self.points_seen {
            // Whole-stream windows take the ordinary query path,
            // bit-identical to an un-windowed query.
            return self.query_clustering();
        }
        // Every window point was absorbed into a micro-cluster whose
        // recency stamp is at least that point's arrival index, so
        // selecting by stamp covers the window; older points absorbed into
        // the same micro-clusters widen the coverage, which is reported
        // honestly (like the coreset backends' bucket granularity).
        let cutoff = self.points_seen - last_points;
        let dim = self.dim.unwrap_or(1);
        let mut summary = PointSet::with_capacity(dim, self.micro_clusters.len());
        let mut covered = 0.0f64;
        for mc in &self.micro_clusters {
            if mc.last_update > cutoff {
                summary.push(&mc.centroid(), mc.count);
                covered += mc.count;
            }
        }
        if summary.is_empty() {
            // Unreachable — the most recent arrival always stamps its
            // micro-cluster past any strict cutoff — but refuse rather
            // than panic inside k-means++ if the invariant ever breaks.
            return Err(ClusteringError::EmptyInput);
        }
        let centers = extract_centers(&summary, &self.config, &mut self.rng)?;
        let stats = QueryStats {
            coresets_merged: 0,
            candidate_points: summary.len(),
            coreset_level: None,
            used_cache: false,
            ran_kmeans: true,
        };
        self.last_stats = Some(stats);
        Ok(ClusteringResult {
            centers,
            cost: f64::NAN,
            points_seen: self.points_seen,
            stats,
            window: Some(crate::publish::WindowInfo {
                last_points,
                covered_points: covered as u64,
            }),
        })
    }

    fn memory_points(&self) -> usize {
        self.micro_clusters.len()
    }

    fn points_seen(&self) -> u64 {
        self.points_seen
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn config(k: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(20 * k)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(3)
    }

    #[test]
    fn query_before_points_is_error() {
        let mut c = CluStream::new(config(3), 0).unwrap();
        assert!(c.query().is_err());
    }

    #[test]
    fn micro_cluster_budget_is_respected() {
        let mut c = CluStream::new(config(3), 0)
            .unwrap()
            .with_max_micro_clusters(15);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..2_000 {
            c.update(&[rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0])
                .unwrap();
            assert!(c.micro_cluster_count() <= 15);
        }
        assert_eq!(c.points_seen(), 2_000);
        assert_eq!(c.memory_points(), c.micro_cluster_count());
    }

    #[test]
    fn finds_separated_clusters() {
        let mut c = CluStream::new(config(3), 7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let anchors = [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]];
        for i in 0..3_000usize {
            let a = anchors[i % 3];
            c.update(&[a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()])
                .unwrap();
        }
        let centers = c.query().unwrap();
        assert_eq!(centers.len(), 3);
        for anchor in [[0.5, 0.5], [50.5, 0.5], [0.5, 50.5]] {
            let nearest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 3.0, "anchor {anchor:?} missed by {nearest}");
        }
    }

    #[test]
    fn points_in_a_tight_blob_stay_within_the_budget() {
        let mut c = CluStream::new(config(2), 3).unwrap();
        let budget = 10 * 2;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1_000 {
            c.update(&[5.0 + rng.gen::<f64>() * 0.01, 5.0]).unwrap();
            assert!(c.micro_cluster_count() <= budget);
        }
        // Most of the 1000 points were absorbed rather than proliferating
        // micro-clusters (the budget caps the count; absorption keeps the
        // total mass in place).
        assert!(c.micro_cluster_count() <= budget);
        assert_eq!(c.points_seen(), 1_000);
        let centers = c.query().unwrap();
        // Every center sits on the blob.
        for center in centers.iter() {
            assert!((center[0] - 5.0).abs() < 0.1, "center {center:?}");
            assert!((center[1] - 5.0).abs() < 0.1, "center {center:?}");
        }
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let mut c = CluStream::new(config(2), 0).unwrap();
        c.update(&[1.0, 2.0]).unwrap();
        assert!(c.update(&[1.0]).is_err());
        assert!(c.update(&[]).is_err());
    }

    #[test]
    fn micro_cluster_cf_algebra() {
        let mut mc = MicroCluster::from_point(&[1.0, 1.0], 1);
        mc.absorb(&[3.0, 1.0], 2);
        assert_eq!(mc.count, 2.0);
        assert_eq!(mc.centroid(), vec![2.0, 1.0]);
        assert_eq!(mc.last_update, 2);
        // Points are at distance 1 from the centroid -> RMS radius 1.
        assert!((mc.rms_radius() - 1.0).abs() < 1e-9);
        let other = MicroCluster::from_point(&[2.0, 4.0], 5);
        mc.merge(&other);
        assert_eq!(mc.count, 3.0);
        assert_eq!(mc.centroid(), vec![2.0, 2.0]);
        // Merges keep the most recent stamp.
        assert_eq!(mc.last_update, 5);
    }

    #[test]
    fn window_query_selects_recent_micro_clusters() {
        let mut c = CluStream::new(config(2), 11).unwrap();
        // Phase 1: a blob at the origin; phase 2: a blob far away. A window
        // covering only phase 2 must answer from phase-2 micro-clusters.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..500 {
            c.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
        }
        for _ in 0..500 {
            c.update(&[100.0 + rng.gen::<f64>(), 100.0 + rng.gen::<f64>()])
                .unwrap();
        }
        let result = c.query_window_clustering(400).unwrap();
        let info = result.window.unwrap();
        assert_eq!(info.last_points, 400);
        assert!(info.covered_points >= 400, "coverage {info:?}");
        // Every returned center sits on the recent blob, not the origin.
        for center in result.centers.iter() {
            assert!(center[0] > 50.0, "stale center {center:?}");
            assert!(center[1] > 50.0, "stale center {center:?}");
        }
        // A whole-stream window is the ordinary query (no window info).
        let whole = c.query_window_clustering(10_000).unwrap();
        assert!(whole.window.is_none());
        // Zero windows are rejected.
        assert!(c.query_window_clustering(0).is_err());
    }
}
