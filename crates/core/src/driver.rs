//! The stream-clustering driver (Algorithm 1) building blocks.
//!
//! Algorithm 1 of the paper keeps an auxiliary point set `C` that buffers
//! arriving points until `m` of them have accumulated; the full batch is
//! then handed to the clustering data structure `D` as a new base bucket.
//! At query time the driver unions `D`'s coreset with the partially-filled
//! buffer and runs k-means++ on the result.
//!
//! [`BucketBuffer`] implements the buffering part and
//! [`extract_centers`] implements the "run k-means++ (best of `R` runs,
//! each polished with Lloyd)" part, so that every algorithm in this crate
//! shares identical driver behaviour.

use crate::config::StreamConfig;
use rand::Rng;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::kmeans::KMeans;
use skm_clustering::{Centers, PointBlock, PointSet};

/// Buffers arriving points into base buckets of `m` points.
///
/// The buffer is a [`PointBlock`]: the bucket's full capacity is reserved
/// when its first point arrives, and every subsequent update writes the
/// point (and its cached squared norm) straight into the block's spare
/// capacity — no per-update temporary, no reallocation during the fill, and
/// no eager replacement allocation when a bucket flushes (the next bucket's
/// buffers are only allocated when its first point actually arrives).
#[derive(Debug, Clone)]
pub struct BucketBuffer {
    bucket_size: usize,
    /// Dimension of the stream, fixed by the first point ever observed (it
    /// must outlive bucket flushes so a wrong-dimension point arriving
    /// right after a flush is still rejected).
    dim: Option<usize>,
    partial: Option<PointBlock>,
    points_seen: u64,
}

impl BucketBuffer {
    /// Creates an empty buffer for base buckets of `bucket_size` points.
    ///
    /// # Panics
    /// Panics if `bucket_size == 0`.
    #[must_use]
    pub fn new(bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be positive");
        Self {
            bucket_size,
            dim: None,
            partial: None,
            points_seen: 0,
        }
    }

    /// Number of points observed so far (both flushed and buffered).
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.points_seen
    }

    /// Number of points currently sitting in the partial bucket.
    #[must_use]
    pub fn buffered_points(&self) -> usize {
        self.partial.as_ref().map_or(0, PointBlock::len)
    }

    /// Dimensionality inferred from the first observed point, if any.
    #[must_use]
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Adds a point. When the buffer reaches the bucket size, the full base
    /// bucket is returned (as a norm-cached [`PointBlock`], moved out
    /// without copying) and the buffer restarts empty.
    ///
    /// # Errors
    /// Returns a dimension-mismatch error if `point` disagrees with earlier
    /// points (including points from already-flushed buckets).
    pub fn push(&mut self, point: &[f64]) -> Result<Option<PointBlock>> {
        if point.is_empty() {
            return Err(ClusteringError::InvalidParameter {
                name: "point",
                message: "points must have at least one dimension".to_string(),
            });
        }
        match self.dim {
            Some(d) if d != point.len() => {
                return Err(ClusteringError::DimensionMismatch {
                    expected: d,
                    got: point.len(),
                });
            }
            Some(_) => {}
            None => self.dim = Some(point.len()),
        }
        let partial = match &mut self.partial {
            Some(p) => p,
            None => {
                // First point of a fresh bucket: reserve the whole bucket
                // up front so every later push lands in spare capacity.
                let mut block = PointBlock::new(point.len());
                block.reserve(self.bucket_size);
                self.partial.insert(block)
            }
        };
        partial.push(point, 1.0);
        self.points_seen += 1;
        if partial.len() == self.bucket_size {
            return Ok(self.partial.take());
        }
        Ok(None)
    }

    /// Borrow of the partially filled bucket (`None` when no points are
    /// buffered). Borrowing instead of cloning keeps query paths free of
    /// bucket-sized temporary copies.
    #[must_use]
    pub fn partial(&self) -> Option<&PointBlock> {
        self.partial.as_ref()
    }
}

/// Runs the paper's query-side clustering procedure on a candidate coreset:
/// best of `config.kmeans_runs` k-means++ seedings, each refined with up to
/// `config.lloyd_iterations` Lloyd iterations.
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `candidates` is empty.
pub fn extract_centers<R: Rng + ?Sized>(
    candidates: &PointSet,
    config: &StreamConfig,
    rng: &mut R,
) -> Result<Centers> {
    if candidates.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let result = KMeans::new(config.k)
        .with_runs(config.kmeans_runs)
        .with_max_lloyd_iterations(config.lloyd_iterations)
        .fit(candidates, rng)?;
    Ok(result.centers)
}

/// [`extract_centers`] over a norm-cached [`PointBlock`]: every seeding
/// run and Lloyd iteration reuses the cached norms (including the ones the
/// bucket buffer computed at update time for partially filled buckets).
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `candidates` is empty.
pub fn extract_centers_block<R: Rng + ?Sized>(
    candidates: &PointBlock,
    config: &StreamConfig,
    rng: &mut R,
) -> Result<Centers> {
    if candidates.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let result = KMeans::new(config.k)
        .with_runs(config.kmeans_runs)
        .with_max_lloyd_iterations(config.lloyd_iterations)
        .fit_block(candidates, rng)?;
    Ok(result.centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn buffer_flushes_full_buckets() {
        let mut buf = BucketBuffer::new(3);
        assert!(buf.push(&[1.0, 0.0]).unwrap().is_none());
        assert!(buf.push(&[2.0, 0.0]).unwrap().is_none());
        let full = buf.push(&[3.0, 0.0]).unwrap().unwrap();
        assert_eq!(full.len(), 3);
        assert_eq!(buf.buffered_points(), 0);
        assert_eq!(buf.points_seen(), 3);
        // Next bucket starts fresh.
        assert!(buf.push(&[4.0, 0.0]).unwrap().is_none());
        assert_eq!(buf.buffered_points(), 1);
        assert_eq!(buf.points_seen(), 4);
    }

    #[test]
    fn buffer_rejects_dimension_changes() {
        let mut buf = BucketBuffer::new(4);
        buf.push(&[1.0, 2.0]).unwrap();
        assert!(buf.push(&[1.0]).is_err());
        assert!(buf.push(&[]).is_err());
    }

    #[test]
    fn buffer_rejects_dimension_change_right_after_flush() {
        // The partial block is consumed by a flush; the stream dimension
        // must survive it so the very next point is still validated.
        let mut buf = BucketBuffer::new(2);
        buf.push(&[1.0, 2.0]).unwrap();
        let full = buf.push(&[3.0, 4.0]).unwrap().unwrap();
        assert_eq!(full.len(), 2);
        assert_eq!(buf.dim(), Some(2));
        assert!(buf.push(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(buf.points_seen(), 2);
    }

    #[test]
    fn partial_reflects_buffered_points() {
        let mut buf = BucketBuffer::new(5);
        assert!(buf.partial().is_none());
        buf.push(&[1.0]).unwrap();
        buf.push(&[2.0]).unwrap();
        let p = buf.partial().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.point(1), &[2.0]);
        assert_eq!(buf.dim(), Some(1));
    }

    #[test]
    fn extract_centers_returns_k_centers() {
        let mut points = PointSet::new(2);
        for i in 0..100 {
            let base = if i % 2 == 0 { 0.0 } else { 50.0 };
            points.push(&[base + f64::from(i % 5) * 0.1, base], 1.0);
        }
        let config = StreamConfig::new(2).with_kmeans_runs(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let centers = extract_centers(&points, &config, &mut rng).unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn extract_centers_empty_is_error() {
        let config = StreamConfig::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(extract_centers(&PointSet::new(2), &config, &mut rng).is_err());
    }

    #[test]
    #[should_panic(expected = "bucket size must be positive")]
    fn zero_bucket_size_panics() {
        let _ = BucketBuffer::new(0);
    }
}
