//! The stream-clustering driver (Algorithm 1) building blocks.
//!
//! Algorithm 1 of the paper keeps an auxiliary point set `C` that buffers
//! arriving points until `m` of them have accumulated; the full batch is
//! then handed to the clustering data structure `D` as a new base bucket.
//! At query time the driver unions `D`'s coreset with the partially-filled
//! buffer and runs k-means++ on the result.
//!
//! [`BucketBuffer`] implements the buffering part and
//! [`extract_centers`] implements the "run k-means++ (best of `R` runs,
//! each polished with Lloyd)" part, so that every algorithm in this crate
//! shares identical driver behaviour.

use crate::config::StreamConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::cost::assign_block;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::kmeans::KMeans;
use skm_clustering::{Centers, PointBlock, PointSet};

/// Validates one arriving stream point against an optional known stream
/// dimension, returning the (possibly newly learned) dimension on success.
///
/// Shared by [`BucketBuffer`] and the sharded ingestion coordinator so
/// both reject empty, wrong-dimension and non-finite points identically —
/// and, crucially, without committing any state for rejected input (the
/// caller stores the returned dimension only after validation succeeds, so
/// a rejected first point cannot lock in a bogus stream dimension).
///
/// `index` is the point's position within the batch being validated
/// (0 for single-point pushes); it is reported in
/// [`ClusteringError::NonFiniteCoordinate`].
pub(crate) fn validate_stream_point(
    dim: Option<usize>,
    point: &[f64],
    index: usize,
) -> Result<usize> {
    if point.is_empty() {
        return Err(ClusteringError::InvalidParameter {
            name: "point",
            message: "points must have at least one dimension".to_string(),
        });
    }
    if let Some(d) = dim {
        if d != point.len() {
            return Err(ClusteringError::DimensionMismatch {
                expected: d,
                got: point.len(),
            });
        }
    }
    if point.iter().any(|x| !x.is_finite()) {
        return Err(ClusteringError::NonFiniteCoordinate { index });
    }
    Ok(point.len())
}

/// Buffers arriving points into base buckets of `m` points.
///
/// The buffer is a [`PointBlock`]: the bucket's full capacity is reserved
/// when its first point arrives, and every subsequent update writes the
/// point (and its cached squared norm) straight into the block's spare
/// capacity — no per-update temporary, no reallocation during the fill, and
/// no eager replacement allocation when a bucket flushes (the next bucket's
/// buffers are only allocated when its first point actually arrives).
///
/// The buffer serializes with the rest of a clusterer's state (the partial
/// bucket's norm cache is rebuilt on restore), so snapshots taken mid-bucket
/// resume bit-identically. Deserialization re-checks the constructor's
/// invariants, so a hand-edited snapshot cannot smuggle in a state the
/// update path could never have produced.
#[derive(Debug, Clone, Serialize)]
pub struct BucketBuffer {
    bucket_size: usize,
    /// Dimension of the stream, fixed by the first point ever observed (it
    /// must outlive bucket flushes so a wrong-dimension point arriving
    /// right after a flush is still rejected).
    dim: Option<usize>,
    partial: Option<PointBlock>,
    points_seen: u64,
}

impl BucketBuffer {
    /// Creates an empty buffer for base buckets of `bucket_size` points.
    ///
    /// Bucket-size validation mirrors [`StreamConfig::validate`]: the
    /// clusterers construct their buffer from an already-validated
    /// configuration, and ad-hoc callers get the same
    /// [`ClusteringError::InvalidParameter`] instead of a panic.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] if `bucket_size == 0`.
    pub fn new(bucket_size: usize) -> Result<Self> {
        if bucket_size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "bucket_size",
                message: "must be positive".to_string(),
            });
        }
        Ok(Self {
            bucket_size,
            dim: None,
            partial: None,
            points_seen: 0,
        })
    }

    /// Number of points observed so far (both flushed and buffered).
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.points_seen
    }

    /// Number of points currently sitting in the partial bucket.
    #[must_use]
    pub fn buffered_points(&self) -> usize {
        self.partial.as_ref().map_or(0, PointBlock::len)
    }

    /// Dimensionality inferred from the first observed point, if any.
    #[must_use]
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Appends one validated point to the partial bucket, returning the full
    /// bucket when this push completes it.
    fn push_validated(&mut self, point: &[f64]) -> Option<PointBlock> {
        let partial = match &mut self.partial {
            Some(p) => p,
            None => {
                // First point of a fresh bucket: reserve the whole bucket
                // up front so every later push lands in spare capacity.
                let mut block = PointBlock::new(point.len());
                block.reserve(self.bucket_size);
                self.partial.insert(block)
            }
        };
        partial.push(point, 1.0);
        self.points_seen += 1;
        if partial.len() == self.bucket_size {
            return self.partial.take();
        }
        None
    }

    /// Adds a point. When the buffer reaches the bucket size, the full base
    /// bucket is returned (as a norm-cached [`PointBlock`], moved out
    /// without copying) and the buffer restarts empty.
    ///
    /// # Errors
    /// Returns a dimension-mismatch error if `point` disagrees with earlier
    /// points (including points from already-flushed buckets), and
    /// [`ClusteringError::NonFiniteCoordinate`] if any coordinate is NaN or
    /// infinite (the point is rejected before touching the buffer).
    pub fn push(&mut self, point: &[f64]) -> Result<Option<PointBlock>> {
        self.dim = Some(validate_stream_point(self.dim, point, 0)?);
        Ok(self.push_validated(point))
    }

    /// Adds a whole batch of points, invoking `on_full` for every base
    /// bucket completed along the way.
    ///
    /// The entire batch is validated (one dimension check and finiteness
    /// pass) *before* any point is buffered, so a rejected batch leaves the
    /// buffer untouched, and the per-point bookkeeping of [`push`] is
    /// amortized across the batch.
    ///
    /// # Errors
    /// Returns the same validation errors as [`push`] (with the offending
    /// batch index in [`ClusteringError::NonFiniteCoordinate`]) and
    /// propagates errors from `on_full`.
    ///
    /// [`push`]: BucketBuffer::push
    pub fn push_batch<F>(&mut self, points: &[&[f64]], mut on_full: F) -> Result<()>
    where
        F: FnMut(PointBlock) -> Result<()>,
    {
        // Validate against a local dimension first: a rejected batch must
        // leave everything untouched, including a not-yet-learned stream
        // dimension (the batch's own points still have to agree with each
        // other, which threading `dim` through the loop enforces).
        let mut dim = self.dim;
        for (i, point) in points.iter().enumerate() {
            dim = Some(validate_stream_point(dim, point, i)?);
        }
        self.dim = dim;
        for point in points {
            if let Some(full) = self.push_validated(point) {
                on_full(full)?;
            }
        }
        Ok(())
    }

    /// Borrow of the partially filled bucket (`None` when no points are
    /// buffered). Borrowing instead of cloning keeps query paths free of
    /// bucket-sized temporary copies.
    #[must_use]
    pub fn partial(&self) -> Option<&PointBlock> {
        self.partial.as_ref()
    }
}

/// Restoring a buffer re-checks the invariants the update path maintains
/// (positive bucket size, a partial bucket strictly below it and matching
/// the learned dimension, bookkeeping that covers the buffered points), so
/// a tampered snapshot is rejected instead of producing a buffer that never
/// flushes or silently disagrees with its own dimension.
impl Deserialize for BucketBuffer {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let map = match value {
            serde::Value::Map(m) => m,
            _ => return Err(serde::Error::custom("expected map for BucketBuffer")),
        };
        let bucket_size: usize = Deserialize::from_value(serde::get_field(map, "bucket_size")?)?;
        let dim: Option<usize> = Deserialize::from_value(serde::get_field(map, "dim")?)?;
        let partial: Option<PointBlock> =
            Deserialize::from_value(serde::get_field(map, "partial")?)?;
        let points_seen: u64 = Deserialize::from_value(serde::get_field(map, "points_seen")?)?;
        if bucket_size == 0 {
            return Err(serde::Error::custom("bucket_size must be positive"));
        }
        if let Some(block) = &partial {
            if block.is_empty() || block.len() >= bucket_size {
                return Err(serde::Error::custom(
                    "partial bucket must hold between 1 and bucket_size - 1 points",
                ));
            }
            if dim != Some(block.dim()) {
                return Err(serde::Error::custom(
                    "partial bucket dimension disagrees with the stream dimension",
                ));
            }
            if points_seen < block.len() as u64 {
                return Err(serde::Error::custom(
                    "points_seen is smaller than the buffered point count",
                ));
            }
        }
        Ok(Self {
            bucket_size,
            dim,
            partial,
            points_seen,
        })
    }
}

/// Runs the paper's query-side clustering procedure on a candidate coreset:
/// best of `config.kmeans_runs` k-means++ seedings, each refined with up to
/// `config.lloyd_iterations` Lloyd iterations.
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `candidates` is empty.
pub fn extract_centers<R: Rng + ?Sized>(
    candidates: &PointSet,
    config: &StreamConfig,
    rng: &mut R,
) -> Result<Centers> {
    if candidates.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let result = KMeans::new(config.k)
        .with_runs(config.kmeans_runs)
        .with_max_lloyd_iterations(config.lloyd_iterations)
        .fit(candidates, rng)?;
    Ok(result.centers)
}

/// [`extract_centers`] over a norm-cached [`PointBlock`]: every seeding
/// run and Lloyd iteration reuses the cached norms (including the ones the
/// bucket buffer computed at update time for partially filled buckets).
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `candidates` is empty.
pub fn extract_centers_block<R: Rng + ?Sized>(
    candidates: &PointBlock,
    config: &StreamConfig,
    rng: &mut R,
) -> Result<Centers> {
    if candidates.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let result = KMeans::new(config.k)
        .with_runs(config.kmeans_runs)
        .with_max_lloyd_iterations(config.lloyd_iterations)
        .fit_block(candidates, rng)?;
    Ok(result.centers)
}

/// Clustering cost of `centers` over the query-time candidate coreset: the
/// weighted SSQ of the candidates against their nearest centers, which is
/// the standard coreset estimate of the cost over the whole stream. Shared
/// by every backend's [`query_clustering`] so published costs are computed
/// identically everywhere; the pass is deterministic (no RNG), so adding it
/// after center extraction cannot perturb query results.
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `candidates` or `centers`
/// is empty.
///
/// [`query_clustering`]: crate::StreamingClusterer::query_clustering
pub fn candidate_cost(candidates: &PointBlock, centers: &Centers) -> Result<f64> {
    Ok(assign_block(candidates, centers)?.cost)
}

/// Selects the query-time candidate set for a time-scoped window covering
/// the most recent `last_points` stream points, from a backend's stored
/// summary suffix — the shared window driver of CT, CC and RCC (and, per
/// shard, of the sharded stream).
///
/// `active` is the backend's list of stored coresets, oldest first, whose
/// spans partition `[1, buckets_inserted]` (the digit-invariant layout all
/// tree-shaped backends maintain). The window maps to base buckets: with
/// `b` points in the partial bucket, the most recent `last_points` points
/// occupy the partial bucket plus the last `ceil((last_points - b) / m)`
/// base buckets, and the selected candidates are every stored coreset whose
/// span intersects that suffix. Coverage is therefore bucket-granular and
/// widens to the span boundaries of whatever merged coresets the structure
/// already holds; the returned `u64` reports the exact number of covered
/// points. Windows that fit entirely inside the partial bucket are answered
/// exactly (point-granular) from its most recent rows.
///
/// Selection is pure bookkeeping — no merge, no RNG — so interleaving
/// windowed and whole-stream queries perturbs neither.
///
/// # Errors
/// Returns [`ClusteringError::InvalidParameter`] when `last_points` is zero
/// or does not name a strict sub-window (callers normalize whole-stream
/// windows to the ordinary query path first), and
/// [`ClusteringError::EmptyInput`] when nothing has been observed.
pub(crate) fn window_candidates_from_suffix(
    active: &[&skm_coreset::coreset::Coreset],
    buckets_inserted: u64,
    bucket_size: usize,
    buffer: &BucketBuffer,
    last_points: u64,
) -> Result<(PointBlock, crate::clusterer::QueryStats, u64)> {
    crate::clusterer::validate_window_points(last_points)?;
    let total = buffer.points_seen();
    if total == 0 {
        return Err(ClusteringError::EmptyInput);
    }
    if last_points >= total {
        return Err(ClusteringError::InvalidParameter {
            name: "window",
            message: "whole-stream windows take the ordinary query path".to_string(),
        });
    }
    let buffered = buffer.buffered_points() as u64;
    let dim = buffer.dim().unwrap_or(1);

    // The window fits inside the partial base bucket: answer exactly from
    // its most recent rows (they are raw points, so no bucket granularity
    // applies).
    if last_points <= buffered {
        let partial = buffer.partial().ok_or(ClusteringError::EmptyInput)?;
        let skip = partial.len() - last_points as usize;
        let mut block = PointBlock::with_capacity(dim, last_points as usize);
        for i in skip..partial.len() {
            block.push(partial.point(i), partial.weight(i));
        }
        let stats = crate::clusterer::QueryStats {
            coresets_merged: 1,
            candidate_points: block.len(),
            coreset_level: Some(0),
            used_cache: false,
            ran_kmeans: true,
        };
        return Ok((block, stats, last_points));
    }

    // `last_points < total = buckets_inserted * m + buffered`, so the
    // flushed part of the window spans at most `buckets_inserted` buckets.
    let needed_flushed = last_points - buffered;
    let m = bucket_size as u64;
    let needed_buckets = needed_flushed.div_ceil(m);
    debug_assert!(needed_buckets <= buckets_inserted);
    let first_needed = buckets_inserted - needed_buckets + 1;

    let selected: Vec<&skm_coreset::coreset::Coreset> = active
        .iter()
        .filter(|c| c.span().end() >= first_needed)
        .copied()
        .collect();
    let mut merged = 0usize;
    let mut max_level = 0u32;
    let mut first_covered = buckets_inserted + 1;
    let total_points: usize = selected.iter().map(|c| c.len()).sum();
    let mut block = PointBlock::with_capacity(dim, total_points + buffered as usize);
    for c in &selected {
        block.extend_from_set(c.points())?;
        merged += 1;
        max_level = max_level.max(c.level());
        first_covered = first_covered.min(c.span().start());
    }
    let covered_flushed = (buckets_inserted + 1 - first_covered) * m;
    if let Some(partial) = buffer.partial() {
        if !partial.is_empty() {
            block.extend_from_block(partial)?;
            merged += 1;
        }
    }
    let stats = crate::clusterer::QueryStats {
        coresets_merged: merged,
        candidate_points: block.len(),
        coreset_level: Some(max_level),
        used_cache: false,
        ran_kmeans: true,
    };
    Ok((block, stats, covered_flushed + buffered))
}

/// The coverage a [`window_candidates_from_suffix`] call would report,
/// without materializing any candidate block: pure span arithmetic over the
/// stored coresets. Windowed stats use this so they stay exactly as
/// side-effect-free as plain stats (no merge, no RNG, no cache traffic) —
/// a requirement for WAL replay equivalence, since stats are logged as
/// plain markers.
///
/// Returns the shard/stream total when `last_points` covers the whole
/// stream, and `0` when nothing has been observed.
pub(crate) fn window_coverage_from_suffix(
    active: &[&skm_coreset::coreset::Coreset],
    buckets_inserted: u64,
    bucket_size: usize,
    buffer: &BucketBuffer,
    last_points: u64,
) -> u64 {
    let total = buffer.points_seen();
    if total == 0 || last_points == 0 {
        return 0;
    }
    if last_points >= total {
        return total;
    }
    let buffered = buffer.buffered_points() as u64;
    if last_points <= buffered {
        return last_points;
    }
    let m = bucket_size as u64;
    let needed_buckets = (last_points - buffered).div_ceil(m);
    let first_needed = buckets_inserted - needed_buckets + 1;
    let first_covered = active
        .iter()
        .filter(|c| c.span().end() >= first_needed)
        .map(|c| c.span().start())
        .min()
        .unwrap_or(buckets_inserted + 1);
    (buckets_inserted + 1 - first_covered) * m + buffered
}

/// The shared tail of every backend's [`query_clustering`]: extract centers
/// from the candidate block ([`extract_centers_block`]), estimate their
/// cost on the same candidates ([`candidate_cost`] — deterministic, after
/// extraction, so the centers and the RNG position are bit-identical to a
/// plain `query`), and assemble the publishable answer.
///
/// [`query_clustering`]: crate::StreamingClusterer::query_clustering
pub(crate) fn extract_clustering_result<R: Rng + ?Sized>(
    candidates: &PointBlock,
    stats: crate::clusterer::QueryStats,
    points_seen: u64,
    config: &StreamConfig,
    rng: &mut R,
) -> Result<crate::publish::ClusteringResult> {
    let centers = extract_centers_block(candidates, config, rng)?;
    let cost = candidate_cost(candidates, &centers)?;
    Ok(crate::publish::ClusteringResult {
        centers,
        cost,
        points_seen,
        stats,
        window: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn buffer_flushes_full_buckets() {
        let mut buf = BucketBuffer::new(3).unwrap();
        assert!(buf.push(&[1.0, 0.0]).unwrap().is_none());
        assert!(buf.push(&[2.0, 0.0]).unwrap().is_none());
        let full = buf.push(&[3.0, 0.0]).unwrap().unwrap();
        assert_eq!(full.len(), 3);
        assert_eq!(buf.buffered_points(), 0);
        assert_eq!(buf.points_seen(), 3);
        // Next bucket starts fresh.
        assert!(buf.push(&[4.0, 0.0]).unwrap().is_none());
        assert_eq!(buf.buffered_points(), 1);
        assert_eq!(buf.points_seen(), 4);
    }

    #[test]
    fn buffer_rejects_dimension_changes() {
        let mut buf = BucketBuffer::new(4).unwrap();
        buf.push(&[1.0, 2.0]).unwrap();
        assert!(buf.push(&[1.0]).is_err());
        assert!(buf.push(&[]).is_err());
    }

    #[test]
    fn buffer_rejects_dimension_change_right_after_flush() {
        // The partial block is consumed by a flush; the stream dimension
        // must survive it so the very next point is still validated.
        let mut buf = BucketBuffer::new(2).unwrap();
        buf.push(&[1.0, 2.0]).unwrap();
        let full = buf.push(&[3.0, 4.0]).unwrap().unwrap();
        assert_eq!(full.len(), 2);
        assert_eq!(buf.dim(), Some(2));
        assert!(buf.push(&[1.0, 2.0, 3.0]).is_err());
        assert_eq!(buf.points_seen(), 2);
    }

    #[test]
    fn partial_reflects_buffered_points() {
        let mut buf = BucketBuffer::new(5).unwrap();
        assert!(buf.partial().is_none());
        buf.push(&[1.0]).unwrap();
        buf.push(&[2.0]).unwrap();
        let p = buf.partial().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.point(1), &[2.0]);
        assert_eq!(buf.dim(), Some(1));
    }

    #[test]
    fn extract_centers_returns_k_centers() {
        let mut points = PointSet::new(2);
        for i in 0..100 {
            let base = if i % 2 == 0 { 0.0 } else { 50.0 };
            points.push(&[base + f64::from(i % 5) * 0.1, base], 1.0);
        }
        let config = StreamConfig::new(2).with_kmeans_runs(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let centers = extract_centers(&points, &config, &mut rng).unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn extract_centers_empty_is_error() {
        let config = StreamConfig::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(extract_centers(&PointSet::new(2), &config, &mut rng).is_err());
    }

    #[test]
    fn zero_bucket_size_is_an_error_not_a_panic() {
        // Regression: this used to `assert!` and abort the caller; the
        // validation now matches `StreamConfig::validate`.
        match BucketBuffer::new(0) {
            Err(ClusteringError::InvalidParameter { name, .. }) => {
                assert_eq!(name, "bucket_size");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_coordinates_are_rejected_without_poisoning_state() {
        let mut buf = BucketBuffer::new(4).unwrap();
        buf.push(&[1.0, 2.0]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match buf.push(&[bad, 0.0]) {
                Err(ClusteringError::NonFiniteCoordinate { index: 0 }) => {}
                other => panic!("expected NonFiniteCoordinate, got {other:?}"),
            }
        }
        // The rejected points must not have advanced any bookkeeping.
        assert_eq!(buf.points_seen(), 1);
        assert_eq!(buf.buffered_points(), 1);
        assert!(buf.partial().unwrap().norms().iter().all(|n| n.is_finite()));
    }

    #[test]
    fn rejected_first_point_does_not_lock_the_stream_dimension() {
        // A rejected point must not commit anything — including the stream
        // dimension learned from it: after a bad 2-d first point, a valid
        // 3-d stream must still be accepted.
        let mut buf = BucketBuffer::new(4).unwrap();
        assert!(buf.push(&[f64::NAN, 0.0]).is_err());
        assert_eq!(buf.dim(), None);
        buf.push(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(buf.dim(), Some(3));

        // Same through the batch path: the rejected batch leaves the
        // dimension unlearned, but a batch must still be self-consistent.
        let mut buf = BucketBuffer::new(4).unwrap();
        let bad2d: &[f64] = &[f64::INFINITY, 0.0];
        assert!(buf.push_batch(&[bad2d], |_| Ok(())).is_err());
        assert_eq!(buf.dim(), None);
        let a: &[f64] = &[1.0, 2.0];
        let b: &[f64] = &[3.0];
        assert!(matches!(
            buf.push_batch(&[a, b], |_| Ok(())),
            Err(ClusteringError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(buf.dim(), None);
        buf.push_batch(&[a], |_| Ok(())).unwrap();
        assert_eq!(buf.dim(), Some(2));
    }

    #[test]
    fn push_batch_flushes_buckets_and_matches_per_point_pushes() {
        let points: Vec<Vec<f64>> = (0..7).map(|i| vec![f64::from(i), 1.0]).collect();
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();

        let mut batched = BucketBuffer::new(3).unwrap();
        let mut batched_full = Vec::new();
        batched
            .push_batch(&refs, |b| {
                batched_full.push(b);
                Ok(())
            })
            .unwrap();

        let mut single = BucketBuffer::new(3).unwrap();
        let mut single_full = Vec::new();
        for p in &refs {
            if let Some(b) = single.push(p).unwrap() {
                single_full.push(b);
            }
        }

        assert_eq!(batched_full, single_full);
        assert_eq!(batched.points_seen(), single.points_seen());
        assert_eq!(batched.partial(), single.partial());
        assert_eq!(batched_full.len(), 2);
        assert_eq!(batched.buffered_points(), 1);
    }

    #[test]
    fn deserialize_rejects_states_the_update_path_cannot_produce() {
        use serde::{Deserialize as _, Serialize as _};

        let mut buf = BucketBuffer::new(4).unwrap();
        buf.push(&[1.0, 2.0]).unwrap();
        let good = buf.to_value();
        assert!(BucketBuffer::from_value(&good).is_ok());

        let tamper = |field: &str, value: serde::Value| {
            let mut map = match good.clone() {
                serde::Value::Map(m) => m,
                other => panic!("expected map, got {other:?}"),
            };
            let entry = map.iter_mut().find(|(k, _)| k == field).unwrap();
            entry.1 = value;
            serde::Value::Map(map)
        };

        // Zero bucket size: the partial bucket would never flush.
        assert!(BucketBuffer::from_value(&tamper("bucket_size", serde::Value::UInt(0))).is_err());
        // A partial at/above the bucket size should have flushed already.
        assert!(BucketBuffer::from_value(&tamper("bucket_size", serde::Value::UInt(1))).is_err());
        // Dimension bookkeeping must agree with the buffered block.
        assert!(BucketBuffer::from_value(&tamper("dim", serde::Value::UInt(3))).is_err());
        assert!(BucketBuffer::from_value(&tamper("dim", serde::Value::Null)).is_err());
        // points_seen cannot be smaller than what is sitting in the buffer.
        assert!(BucketBuffer::from_value(&tamper("points_seen", serde::Value::UInt(0))).is_err());
    }

    #[test]
    fn push_batch_rejects_whole_batch_before_buffering() {
        let mut buf = BucketBuffer::new(10).unwrap();
        let good = [0.0, 1.0];
        let bad = [2.0, f64::NAN];
        let batch: Vec<&[f64]> = vec![&good, &bad];
        match buf.push_batch(&batch, |_| Ok(())) {
            Err(ClusteringError::NonFiniteCoordinate { index: 1 }) => {}
            other => panic!("expected NonFiniteCoordinate, got {other:?}"),
        }
        // Validation happens before buffering: even the valid prefix point
        // must not have been consumed.
        assert_eq!(buf.points_seen(), 0);
        assert_eq!(buf.buffered_points(), 0);
    }
}
