//! # skm-stream
//!
//! Streaming k-means clustering with fast queries — the core algorithms of
//! the ICDE 2017 paper by Zhang, Tangwongsan and Tirthapura, implemented
//! from scratch in Rust.
//!
//! ## Algorithms
//!
//! | Type | Paper name | Role |
//! |------|-----------|------|
//! | [`CoresetTreeClusterer`] | CT (streamkm++ when `r = 2`) | prior-art baseline |
//! | [`CachedCoresetTree`] | CC | coreset caching (Algorithm 3) |
//! | [`RecursiveCachedTree`] | RCC | recursive coreset cache (Algorithms 4–6) |
//! | [`OnlineCC`] | OnlineCC | hybrid of CC and Sequential k-means (Algorithm 7) |
//! | [`SequentialKMeans`] | Sequential k-means | MacQueen's online baseline |
//! | [`BatchKMeansPP`] | batch k-means++ | accuracy reference (not streaming) |
//!
//! All of them implement [`StreamingClusterer`], so the examples and the
//! benchmark harness can drive them uniformly. The repository-level
//! `ARCHITECTURE.md` carries the full system picture: the ingest → bucket
//! buffer → coreset tree → merge → query data flow, the complete
//! algorithm-to-module table, the shard/thread model and the
//! snapshot-published read path.
//!
//! ## Structure
//!
//! * [`config`] — the shared [`StreamConfig`] (k, bucket size `m`, merge
//!   degree `r`, query-time k-means++ settings).
//! * [`driver`] — the Algorithm 1 driver pieces: [`driver::BucketBuffer`]
//!   and [`driver::extract_centers`].
//! * [`shard`] — [`ShardedStream`]: multi-threaded ingestion that
//!   partitions the stream round-robin across per-shard clusterers and
//!   merges their coresets at query time.
//! * [`publish`] — the snapshot-published query fast path:
//!   [`PublishedClustering`] values swapped through a [`PublishSlot`] so
//!   concurrent readers serve cached answers without the ingest lock.
//! * [`coreset_tree`] — the r-way merging coreset tree (Algorithm 2).
//! * [`cache`] — the coreset cache keyed by right endpoints.
//! * [`numeric`] — `major`, `minor` and `prefixsum` in base `r`
//!   (Section 4.1).
//!
//! ## Example
//!
//! ```
//! use skm_stream::prelude::*;
//!
//! let config = StreamConfig::new(2).with_bucket_size(40).with_kmeans_runs(1);
//! let mut cc = CachedCoresetTree::new(config, 7).unwrap();
//! for i in 0..500u32 {
//!     let x = if i % 2 == 0 { 0.0 } else { 100.0 };
//!     cc.update(&[x + f64::from(i % 10) * 0.01, 0.0]).unwrap();
//! }
//! let centers = cc.query().unwrap();
//! assert_eq!(centers.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod cache;
pub mod cc;
pub mod clusterer;
pub mod clustream;
pub mod config;
pub mod coreset_tree;
pub mod ct;
pub mod decay;
pub mod driver;
pub mod kmedian_stream;
pub mod numeric;
pub mod online_cc;
pub mod publish;
pub mod rcc;
pub mod sequential;
pub mod shard;

pub use batch::BatchKMeansPP;
pub use cc::CachedCoresetTree;
pub use clusterer::{validate_window_points, QueryStats, StreamingClusterer};
pub use clustream::CluStream;
pub use config::StreamConfig;
pub use ct::CoresetTreeClusterer;
pub use decay::DecayedSequentialKMeans;
pub use kmedian_stream::KMedianCC;
pub use online_cc::OnlineCC;
pub use publish::{ClusteringResult, PublishSlot, PublishedClustering, WindowInfo};
pub use rcc::RecursiveCachedTree;
pub use sequential::SequentialKMeans;
pub use shard::{ShardClusterer, ShardedStream, ShardedStreamState, StreamStats};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::batch::BatchKMeansPP;
    pub use crate::cc::CachedCoresetTree;
    pub use crate::clusterer::{QueryStats, StreamingClusterer};
    pub use crate::clustream::CluStream;
    pub use crate::config::StreamConfig;
    pub use crate::ct::CoresetTreeClusterer;
    pub use crate::decay::DecayedSequentialKMeans;
    pub use crate::kmedian_stream::KMedianCC;
    pub use crate::online_cc::OnlineCC;
    pub use crate::publish::{ClusteringResult, PublishSlot, PublishedClustering, WindowInfo};
    pub use crate::rcc::RecursiveCachedTree;
    pub use crate::sequential::SequentialKMeans;
    pub use crate::shard::{ShardClusterer, ShardedStream, ShardedStreamState, StreamStats};
}
