//! The [`StreamingClusterer`] trait and query diagnostics.
//!
//! Every algorithm in this crate — the CT baseline, CC, RCC, OnlineCC,
//! Sequential k-means and the batch reference — implements this trait, so
//! the examples and the benchmark harness can treat them uniformly
//! (including through `Box<dyn StreamingClusterer>`).

use crate::publish::ClusteringResult;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;

/// A streaming k-means clusterer: consumes points one at a time and answers
/// clustering queries for all points observed so far.
pub trait StreamingClusterer {
    /// Short human-readable algorithm name (for reports: `"CT"`, `"CC"`,
    /// `"RCC"`, `"OnlineCC"`, `"Sequential"`, `"BatchKMeansPP"`).
    fn name(&self) -> &'static str;

    /// Processes one arriving point (unit weight).
    ///
    /// # Errors
    /// Returns an error if the point's dimensionality is inconsistent with
    /// previously observed points or an internal invariant is violated.
    fn update(&mut self, point: &[f64]) -> Result<()>;

    /// Processes a batch of arriving points (unit weight each), in order.
    ///
    /// The default implementation is a per-point [`update`] loop. The
    /// coreset-based algorithms override it to push whole slices into their
    /// bucket buffer's spare capacity — one dimension check and one norm
    /// pass per batch — which is what the sharded ingestion layer
    /// ([`crate::shard::ShardedStream`]) and throughput-sensitive
    /// single-threaded callers use to amortize per-point call overhead.
    ///
    /// Batched ingestion is bit-identical to per-point ingestion (a
    /// property test pins this), so batch boundaries are purely a
    /// throughput knob:
    ///
    /// ```rust
    /// use skm_stream::{CachedCoresetTree, StreamConfig, StreamingClusterer};
    ///
    /// let config = StreamConfig::new(2).with_bucket_size(20).with_kmeans_runs(1);
    /// let mut batched = CachedCoresetTree::new(config, 7).unwrap();
    /// let mut per_point = CachedCoresetTree::new(config, 7).unwrap();
    ///
    /// let points: Vec<Vec<f64>> = (0..50)
    ///     .map(|i| vec![if i % 2 == 0 { 0.0 } else { 100.0 }, f64::from(i % 5)])
    ///     .collect();
    /// let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
    ///
    /// batched.update_batch(&refs).unwrap();
    /// for p in &refs {
    ///     per_point.update(p).unwrap();
    /// }
    /// assert_eq!(batched.query().unwrap(), per_point.query().unwrap());
    /// ```
    ///
    /// # Errors
    /// Returns the same errors as [`update`]. Overrides that pre-validate
    /// the batch reject it atomically (no point is consumed); the default
    /// loop stops at the first failing point.
    ///
    /// [`update`]: StreamingClusterer::update
    fn update_batch(&mut self, points: &[&[f64]]) -> Result<()> {
        for point in points {
            self.update(point)?;
        }
        Ok(())
    }

    /// Returns `k` cluster centers for everything observed so far.
    ///
    /// Querying an algorithm that has seen no points is an error.
    ///
    /// # Errors
    /// Returns an error when no points have been observed yet.
    fn query(&mut self) -> Result<Centers>;

    /// Runs a query and returns the complete answer in publishable form:
    /// centers, a coreset-estimated clustering cost, the points-seen
    /// watermark and the query diagnostics
    /// (see [`crate::publish::PublishedClustering`]).
    ///
    /// The coreset-based algorithms override this to compute a genuine cost
    /// estimate (one assignment pass over the query-time candidate set —
    /// deterministic, so the returned centers stay bit-identical to
    /// [`query`]). The default implementation wraps [`query`] with
    /// `cost = NaN`.
    ///
    /// # Errors
    /// Same failure modes as [`query`].
    ///
    /// [`query`]: StreamingClusterer::query
    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        let centers = self.query()?;
        Ok(ClusteringResult {
            centers,
            cost: f64::NAN,
            points_seen: self.points_seen(),
            stats: self.last_query_stats().unwrap_or_default(),
            window: None,
        })
    }

    /// Runs a time-scoped query covering (at least) the most recent
    /// `last_points` stream points, answered from the algorithm's stored
    /// summary structure — no recomputation from raw history.
    ///
    /// A window spanning the whole stream (`last_points >=`
    /// [`points_seen`]) is answered by the ordinary whole-stream
    /// [`query_clustering`] path, bit-identically to never having asked
    /// for a window. Smaller windows select the suffix of stored summaries
    /// (buckets/coresets, plus the partial base bucket) that covers the
    /// window; the answer's [`ClusteringResult::window`] reports the exact
    /// coverage, which is bucket-granular and may exceed `last_points`.
    ///
    /// The default implementation supports only the trivial whole-stream
    /// window and reports an `InvalidParameter { name: "window" }` error
    /// otherwise; the coreset-tree algorithms (CT, CC, RCC, sharded) and
    /// CluStream override it.
    ///
    /// # Errors
    /// Returns an error when `last_points == 0`, when no points have been
    /// observed, or when the backend cannot answer windowed queries.
    ///
    /// [`points_seen`]: StreamingClusterer::points_seen
    /// [`query_clustering`]: StreamingClusterer::query_clustering
    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        validate_window_points(last_points)?;
        if last_points >= self.points_seen() && self.points_seen() > 0 {
            return self.query_clustering();
        }
        Err(ClusteringError::InvalidParameter {
            name: "window",
            message: format!(
                "the {} backend cannot answer windows smaller than the whole stream",
                self.name()
            ),
        })
    }

    /// Number of points currently held by the internal data structures
    /// (coreset tree + cache + partial bucket + …). This is the quantity the
    /// paper reports in Table 4.
    fn memory_points(&self) -> usize;

    /// Number of stream points observed so far.
    fn points_seen(&self) -> u64;

    /// Dimensionality of the stream, once it has been fixed by the first
    /// accepted point (`None` before that, or for algorithms that do not
    /// track it). Serving layers use this to pre-validate whole batches
    /// without consuming any point.
    fn dim(&self) -> Option<usize> {
        None
    }

    /// Diagnostics describing the most recent call to [`query`]
    /// (`None` before the first query).
    ///
    /// [`query`]: StreamingClusterer::query
    fn last_query_stats(&self) -> Option<QueryStats> {
        None
    }
}

/// Rejects a zero-length window before it can reach any summary-selection
/// arithmetic. Shared by every [`StreamingClusterer::query_window_clustering`]
/// implementation so the error (`InvalidParameter { name: "window" }`, which
/// serving layers map to their typed bad-window code) is identical across
/// backends.
///
/// # Errors
/// Returns [`ClusteringError::InvalidParameter`] when `last_points == 0`.
pub fn validate_window_points(last_points: u64) -> Result<()> {
    if last_points == 0 {
        return Err(ClusteringError::InvalidParameter {
            name: "window",
            message: "window must cover at least one point".to_string(),
        });
    }
    Ok(())
}

/// Diagnostics about a single clustering query, used to validate the
/// paper's analytical claims (coresets merged per query, coreset level) and
/// to drive the Table 1 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryStats {
    /// Number of stored coresets/buckets that were unioned to answer the
    /// query (CT merges up to `(r−1)·log_r N`, CC at most `r`, RCC `O(ι)`).
    pub coresets_merged: usize,
    /// Number of weighted points handed to k-means++ at query time.
    pub candidate_points: usize,
    /// Level (Definition 2) of the coreset the answer was derived from.
    /// `None` for algorithms that do not build coresets (Sequential, batch).
    pub coreset_level: Option<u32>,
    /// Whether a cached coreset was reused to answer this query.
    pub used_cache: bool,
    /// Whether OnlineCC fell back to the (expensive) CC path; `false` for
    /// other algorithms unless a k-means++ run happened at query time.
    pub ran_kmeans: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_empty() {
        let s = QueryStats::default();
        assert_eq!(s.coresets_merged, 0);
        assert_eq!(s.candidate_points, 0);
        assert!(s.coreset_level.is_none());
        assert!(!s.used_cache);
        assert!(!s.ran_kmeans);
    }

    #[test]
    fn stats_fields_round_trip() {
        let s = QueryStats {
            coresets_merged: 3,
            candidate_points: 120,
            coreset_level: Some(2),
            used_cache: true,
            ran_kmeans: true,
        };
        let copy = s;
        assert_eq!(copy, s);
        assert_eq!(s.coreset_level, Some(2));
    }
}
