//! CC: the coreset tree with caching (Algorithm 3) — the paper's first
//! contribution.
//!
//! CC performs exactly the same updates as CT, but answers queries by
//! reusing a coreset cached at a previous query. When `N` base buckets have
//! arrived, the interval `[1, N]` is split as `[1, N₁] ∪ [N₁+1, N]` where
//! `N₁ = major(N, r)`: the prefix `[1, N₁]` is fetched from the cache (it was
//! stored by an earlier query, Lemma 4) and the suffix `[N₁+1, N]` consists
//! of at most `r − 1` coresets that all sit in a single level of the tree.
//! A query therefore merges at most `r` coresets instead of up to
//! `(r−1)·log_r N` (Lemma 7), while the level of the returned coreset stays
//! below `⌈2·log_r N⌉` (Lemma 5), preserving the `O(log k)` approximation
//! guarantee (Lemma 6).

use crate::cache::CoresetCache;
use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::coreset_tree::CoresetTree;
use crate::driver::{extract_centers_block, extract_clustering_result, BucketBuffer};
use crate::numeric::{major, minor_term};
use crate::publish::ClusteringResult;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointBlock};
use skm_coreset::coreset::Coreset;
use skm_coreset::merge::merge_coresets;

/// Streaming clusterer implementing the Cached Coreset Tree (CC).
///
/// The whole clusterer state — configuration, tree, cache, partial bucket
/// and RNG position — is `Serialize`/`Deserialize`, so a snapshot restored
/// via `serde_json` continues the stream bit-identically to an
/// uninterrupted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedCoresetTree {
    config: StreamConfig,
    tree: CoresetTree,
    cache: CoresetCache,
    buffer: BucketBuffer,
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
}

impl CachedCoresetTree {
    /// Creates a CC clusterer with the given configuration and RNG seed.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tree: CoresetTree::new(&config)?,
            cache: CoresetCache::new(),
            buffer: BucketBuffer::new(config.bucket_size)?,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
        })
    }

    /// The configuration this clusterer was built with.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The underlying coreset tree (tests and diagnostics).
    #[must_use]
    pub fn tree(&self) -> &CoresetTree {
        &self.tree
    }

    /// The coreset cache (tests and diagnostics).
    #[must_use]
    pub fn cache(&self) -> &CoresetCache {
        &self.cache
    }

    /// `CC-Coreset` (Algorithm 3): returns a single coreset whose span is
    /// `[1, N]`, reusing the cache where possible, and maintains the cache
    /// (insert under key `N`, evict stale entries).
    ///
    /// Returns `None` when no complete base bucket has been inserted yet
    /// (`N = 0`); the caller then answers the query from the partial bucket
    /// alone.
    ///
    /// # Errors
    /// Propagates coreset-construction failures.
    pub fn query_coreset(&mut self) -> Result<Option<(Coreset, QueryStats)>> {
        let n = self.tree.buckets_inserted();
        if n == 0 {
            return Ok(None);
        }
        let r = self.tree.merge_degree();

        // Case 0: the coreset for [1, N] is already cached (repeated query
        // with no new complete bucket in between).
        if let Some(cached) = self.cache.lookup(n) {
            let stats = QueryStats {
                coresets_merged: 1,
                candidate_points: cached.len(),
                coreset_level: Some(cached.level()),
                used_cache: true,
                ran_kmeans: false,
            };
            return Ok(Some((cached.clone(), stats)));
        }

        let n1 = major(n, r);
        let mut used_cache = false;
        let inputs: Vec<Coreset> = if n1 == 0 || !self.cache.contains(n1) {
            // Fall back to the plain CT query: union every active bucket.
            // (This happens when queries are infrequent and the cache has
            // not been maintained recently — Section 4.1.)
            self.tree.active_coresets().into_iter().cloned().collect()
        } else {
            used_cache = true;
            // The suffix [N1+1, N] lives entirely at level α of the tree,
            // where minor(N, r) = β·r^α (all lower levels are empty because
            // the corresponding digits of N are zero).
            let alpha = minor_term(n, r).expect("n > 0").alpha as usize;
            let prefix = self.cache.lookup(n1).expect("checked above").clone();
            let mut v = Vec::with_capacity(1 + self.tree.level(alpha).len());
            v.push(prefix);
            v.extend(self.tree.level(alpha).iter().cloned());
            v
        };

        debug_assert!(
            !inputs.is_empty(),
            "N > 0 implies at least one active bucket"
        );
        let merged_count = inputs.len();
        let reduced = merge_coresets(&inputs, self.tree.builder(), &mut self.rng)?;
        debug_assert_eq!(reduced.span().start(), 1);
        debug_assert_eq!(reduced.span().end(), n);

        let stats = QueryStats {
            coresets_merged: merged_count,
            candidate_points: reduced.len(),
            coreset_level: Some(reduced.level()),
            used_cache,
            ran_kmeans: false,
        };

        // Maintain the cache: store the new coreset under key N and drop
        // everything outside prefixsum(N, r) ∪ {N}.
        self.cache.insert(reduced.clone());
        self.cache.evict_stale(n, r);

        Ok(Some((reduced, stats)))
    }

    /// The candidate points a query hands to k-means++ (as a norm-cached
    /// block): the CC coreset for `[1, N]` unioned with the partially
    /// filled base bucket, whose update-time norm cache is reused verbatim.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when no points have arrived.
    pub fn query_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        match self.query_coreset()? {
            Some((coreset, mut stats)) => {
                let mut candidates = PointBlock::from_point_set_owned(coreset.into_points());
                if let Some(p) = self.buffer.partial() {
                    if !p.is_empty() {
                        // Borrowed append — no bucket-sized clone per query,
                        // and the buffered points' norms ride along.
                        candidates.extend_from_block(p)?;
                        stats.coresets_merged += 1;
                    }
                }
                stats.candidate_points = candidates.len();
                stats.ran_kmeans = true;
                Ok((candidates, stats))
            }
            None => {
                let candidates = self
                    .buffer
                    .partial()
                    .cloned()
                    .ok_or(ClusteringError::EmptyInput)?;
                let stats = QueryStats {
                    coresets_merged: 1,
                    candidate_points: candidates.len(),
                    coreset_level: Some(0),
                    used_cache: false,
                    ran_kmeans: true,
                };
                Ok((candidates, stats))
            }
        }
    }

    /// Candidate points for a time-scoped window over the most recent
    /// `last_points` stream points: the suffix of active *tree* buckets
    /// whose spans intersect the window, plus the partial base bucket.
    /// The coreset cache is keyed by prefix right-endpoints (`[1, e]`), so
    /// suffix windows bypass it — selection is pure bookkeeping with no
    /// merge and no RNG use. The `u64` reports the exact (bucket-granular)
    /// coverage.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point and
    /// an `InvalidParameter { name: "window" }` error for invalid windows.
    pub fn query_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::driver::window_candidates_from_suffix(
            &self.tree.active_coresets(),
            self.tree.buckets_inserted(),
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }

    /// The coverage a windowed query over the most recent `last_points`
    /// points would report, computed from span arithmetic alone (no merge,
    /// no RNG, no cache traffic). `0` before the first point.
    #[must_use]
    pub fn window_coverage(&self, last_points: u64) -> u64 {
        crate::driver::window_coverage_from_suffix(
            &self.tree.active_coresets(),
            self.tree.buckets_inserted(),
            self.config.bucket_size,
            &self.buffer,
            last_points,
        )
    }
}

impl StreamingClusterer for CachedCoresetTree {
    fn name(&self) -> &'static str {
        "CC"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        if let Some(full_bucket) = self.buffer.push(point)? {
            self.tree
                .insert_bucket(full_bucket.into_point_set(), &mut self.rng)?;
        }
        Ok(())
    }

    fn update_batch(&mut self, points: &[&[f64]]) -> Result<()> {
        let tree = &mut self.tree;
        let rng = &mut self.rng;
        self.buffer.push_batch(points, |full_bucket| {
            tree.insert_bucket(full_bucket.into_point_set(), rng)
        })
    }

    fn query(&mut self) -> Result<Centers> {
        let (candidates, stats) = self.query_candidates()?;
        let centers = extract_centers_block(&candidates, &self.config, &mut self.rng)?;
        self.last_stats = Some(stats);
        Ok(centers)
    }

    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        let (candidates, stats) = self.query_candidates()?;
        let result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.buffer.points_seen() == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        if last_points >= self.buffer.points_seen() {
            // Whole-stream windows take the ordinary (cached) query path,
            // bit-identical to an un-windowed query.
            return self.query_clustering();
        }
        let (candidates, stats, covered) = self.query_window_candidates(last_points)?;
        let mut result = extract_clustering_result(
            &candidates,
            stats,
            self.buffer.points_seen(),
            &self.config,
            &mut self.rng,
        )?;
        result.window = Some(crate::publish::WindowInfo {
            last_points,
            covered_points: covered,
        });
        self.last_stats = Some(result.stats);
        Ok(result)
    }

    fn memory_points(&self) -> usize {
        self.tree.stored_points() + self.cache.stored_points() + self.buffer.buffered_points()
    }

    fn points_seen(&self) -> u64 {
        self.buffer.points_seen()
    }

    fn dim(&self) -> Option<usize> {
        self.buffer.dim()
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::{ceil_log, prefixsum};
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    fn config(k: usize, m: usize, r: u64) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(m)
            .with_merge_degree(r)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2)
    }

    fn push_random_points(cc: &mut CachedCoresetTree, n: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let anchors = [[0.0, 0.0], [40.0, 0.0], [0.0, 40.0], [40.0, 40.0]];
        for i in 0..n {
            let a = anchors[i % anchors.len()];
            cc.update(&[a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()])
                .unwrap();
        }
    }

    #[test]
    fn query_before_any_point_is_error() {
        let mut cc = CachedCoresetTree::new(config(2, 20, 2), 0).unwrap();
        assert!(cc.query().is_err());
    }

    #[test]
    fn query_with_partial_bucket_only() {
        let mut cc = CachedCoresetTree::new(config(2, 100, 2), 0).unwrap();
        push_random_points(&mut cc, 12, 1);
        let centers = cc.query().unwrap();
        assert_eq!(centers.len(), 2);
        let stats = cc.last_query_stats().unwrap();
        assert_eq!(stats.coreset_level, Some(0));
        assert!(!stats.used_cache);
    }

    #[test]
    fn lemma_4_cache_holds_prefixsum_when_queried_every_bucket() {
        // Query after every base bucket; before bucket N+1 arrives, the
        // cache must contain every element of prefixsum(N+1, r).
        let m = 10;
        let r = 2;
        let mut cc = CachedCoresetTree::new(config(2, m, r), 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for bucket in 1..=32u64 {
            for _ in 0..m {
                cc.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
            }
            cc.query().unwrap();
            // After the query at N = bucket, the cache must cover
            // prefixsum(N + 1, r) (Lemma 4 + Fact 2).
            for needed in prefixsum(bucket + 1, r) {
                assert!(
                    cc.cache().contains(needed),
                    "after bucket {bucket}: cache {:?} missing {needed}",
                    cc.cache().keys()
                );
            }
        }
    }

    #[test]
    fn lemma_5_coreset_level_bound() {
        // When queried after every bucket, the level of the returned coreset
        // is at most ceil(2 * log_r N) - 1... we check the slightly weaker
        // bound ceil(log_r N) + chi(N) - 1 <= 2*ceil(log_r N) from the proof.
        let m = 8;
        for r in [2u64, 3] {
            let mut cc = CachedCoresetTree::new(config(2, m, r), 11).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            for bucket in 1..=40u64 {
                for _ in 0..m {
                    cc.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
                }
                cc.query().unwrap();
                let stats = cc.last_query_stats().unwrap();
                let level = stats.coreset_level.unwrap();
                let bound = 2 * ceil_log(bucket, r).max(1);
                assert!(
                    level <= bound,
                    "r={r} N={bucket}: level {level} exceeds 2*ceil(log_r N) = {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_7_queries_merge_at_most_r_plus_partial() {
        // With queries after every bucket, CC must merge at most r coresets
        // (plus possibly the partial base bucket).
        let m = 10;
        let r = 3u64;
        let mut cc = CachedCoresetTree::new(config(2, m, r), 17).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        for _bucket in 1..=50u64 {
            for _ in 0..m {
                cc.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
            }
            cc.query().unwrap();
            let stats = cc.last_query_stats().unwrap();
            assert!(
                stats.coresets_merged <= r as usize + 1,
                "merged {} coresets, expected at most r + 1 = {}",
                stats.coresets_merged,
                r + 1
            );
        }
    }

    #[test]
    fn infrequent_queries_fall_back_to_ct_and_still_work() {
        let m = 10;
        let mut cc = CachedCoresetTree::new(config(3, m, 2), 23).unwrap();
        push_random_points(&mut cc, 640, 29);
        // First query ever, after 64 buckets: cache is empty, must fall back.
        let centers = cc.query().unwrap();
        assert_eq!(centers.len(), 3);
        let stats = cc.last_query_stats().unwrap();
        assert!(!stats.used_cache);
        // Second immediate query hits the cache entry stored by the first.
        cc.query().unwrap();
        assert!(cc.last_query_stats().unwrap().used_cache);
    }

    #[test]
    fn clusters_are_found_accurately() {
        let mut cc = CachedCoresetTree::new(
            StreamConfig::new(4)
                .with_bucket_size(80)
                .with_kmeans_runs(3),
            31,
        )
        .unwrap();
        push_random_points(&mut cc, 4_000, 37);
        let centers = cc.query().unwrap();
        for anchor in [[0.5, 0.5], [40.5, 0.5], [0.5, 40.5], [40.5, 40.5]] {
            let closest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(
                closest < 2.0,
                "anchor {anchor:?} missed (distance {closest})"
            );
        }
    }

    #[test]
    fn memory_is_within_constant_factor_of_ct() {
        use crate::ct::CoresetTreeClusterer;
        let cfg = config(3, 30, 2);
        let mut cc = CachedCoresetTree::new(cfg, 41).unwrap();
        let mut ct = CoresetTreeClusterer::new(cfg, 41).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for i in 0..3_000usize {
            let p = [rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0];
            cc.update(&p).unwrap();
            ct.update(&p).unwrap();
            if i % 100 == 99 {
                cc.query().unwrap();
            }
        }
        // Table 4: CC's memory is below ~2x the memory of streamkm++ (CT).
        assert!(cc.memory_points() <= 2 * ct.memory_points() + cfg.bucket_size);
    }

    #[test]
    fn repeated_query_without_new_bucket_hits_cache() {
        let m = 10;
        let mut cc = CachedCoresetTree::new(config(2, m, 2), 47).unwrap();
        push_random_points(&mut cc, 40, 53); // exactly 4 buckets, no partial
        cc.query().unwrap();
        cc.query().unwrap();
        let stats = cc.last_query_stats().unwrap();
        assert!(stats.used_cache);
        assert_eq!(stats.coresets_merged, 1);
    }
}
