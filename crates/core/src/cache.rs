//! The coreset cache used by CC and RCC.
//!
//! The cache stores previously computed coresets, keyed by the *right
//! endpoint* of their span (the index of the newest base bucket they
//! summarize). After answering a query at `N` buckets, CC inserts the freshly
//! built coreset with key `N` and evicts every entry whose key is not in
//! `prefixsum(N, r) ∪ {N}` (Algorithm 3, lines 18–19), which keeps at most
//! `O(log_r N)` cached coresets alive (Lemma 7).

use crate::numeric::prefixsum;
use serde::{Deserialize, Serialize, Value};
use skm_coreset::coreset::Coreset;
use std::collections::HashMap;

/// A cache of coresets keyed by the right endpoint of their span.
#[derive(Debug, Clone, Default)]
pub struct CoresetCache {
    entries: HashMap<u64, Coreset>,
}

impl CoresetCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
        }
    }

    /// Number of cached coresets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a coreset with right endpoint `key` is cached.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Looks up the coreset with right endpoint `key`.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<&Coreset> {
        self.entries.get(&key)
    }

    /// Inserts a coreset under the right endpoint of its span, replacing any
    /// previous entry with the same key.
    pub fn insert(&mut self, coreset: Coreset) {
        self.entries.insert(coreset.right_endpoint(), coreset);
    }

    /// Evicts every entry whose key is not in `prefixsum(n, r) ∪ {n}`
    /// (Algorithm 3, line 19). Returns the number of evicted entries.
    pub fn evict_stale(&mut self, n: u64, r: u64) -> usize {
        let mut keep = prefixsum(n, r);
        keep.push(n);
        let before = self.entries.len();
        self.entries.retain(|key, _| keep.contains(key));
        before - self.entries.len()
    }

    /// All cached keys (right endpoints), in ascending order.
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Total number of (weighted) points stored in the cache.
    #[must_use]
    pub fn stored_points(&self) -> usize {
        self.entries.values().map(Coreset::len).sum()
    }

    /// Removes every entry (used when an enclosing RCC structure is reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The cache serializes as a sequence of coresets sorted by right endpoint
/// (the map key is recomputed from each coreset's span on restore, and the
/// sort keeps snapshot bytes independent of `HashMap` iteration order).
impl Serialize for CoresetCache {
    fn to_value(&self) -> Value {
        let mut entries: Vec<&Coreset> = self.entries.values().collect();
        entries.sort_by_key(|c| c.right_endpoint());
        Value::Seq(entries.iter().map(|c| c.to_value()).collect())
    }
}

impl Deserialize for CoresetCache {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let coresets: Vec<Coreset> = Deserialize::from_value(value)?;
        let mut cache = Self::new();
        for coreset in coresets {
            cache.insert(coreset);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skm_clustering::PointSet;
    use skm_coreset::Span;

    fn coreset(span: Span, n_points: usize) -> Coreset {
        let mut s = PointSet::new(1);
        for i in 0..n_points {
            s.push(&[i as f64], 1.0);
        }
        Coreset::with_parts(s, span, 1)
    }

    #[test]
    fn insert_and_lookup_by_right_endpoint() {
        let mut cache = CoresetCache::new();
        assert!(cache.is_empty());
        cache.insert(coreset(Span::new(1, 4), 3));
        cache.insert(coreset(Span::new(1, 6), 5));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(4));
        assert!(cache.contains(6));
        assert!(!cache.contains(5));
        assert_eq!(cache.lookup(4).unwrap().span(), Span::new(1, 4));
        assert_eq!(cache.stored_points(), 8);
    }

    #[test]
    fn reinsert_replaces_entry() {
        let mut cache = CoresetCache::new();
        cache.insert(coreset(Span::new(1, 4), 3));
        cache.insert(coreset(Span::new(1, 4), 9));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(4).unwrap().len(), 9);
    }

    #[test]
    fn eviction_keeps_only_prefixsum_and_n() {
        // After bucket 7 with r = 2: prefixsum(7,2) = {6, 4}; keep {4, 6, 7}.
        let mut cache = CoresetCache::new();
        for end in 1..=7u64 {
            cache.insert(coreset(Span::new(1, end), 2));
        }
        let evicted = cache.evict_stale(7, 2);
        assert_eq!(evicted, 4);
        assert_eq!(cache.keys(), vec![4, 6, 7]);
    }

    #[test]
    fn eviction_matches_paper_figure_2() {
        // Figure 2: after bucket 15 (r = 2) the cache holds coresets with
        // right endpoints {8, 12, 14, 15} = prefixsum(15,2) ∪ {15}.
        let mut cache = CoresetCache::new();
        for end in 1..=15u64 {
            cache.insert(coreset(Span::new(1, end), 1));
        }
        cache.evict_stale(15, 2);
        assert_eq!(cache.keys(), vec![8, 12, 14, 15]);
        // After bucket 16, only [1,16] remains (16 is a power of 2).
        cache.insert(coreset(Span::new(1, 16), 1));
        cache.evict_stale(16, 2);
        assert_eq!(cache.keys(), vec![16]);
    }

    #[test]
    fn cache_size_stays_logarithmic() {
        let r = 2u64;
        let mut cache = CoresetCache::new();
        for n in 1..=1024u64 {
            cache.insert(coreset(Span::new(1, n), 1));
            cache.evict_stale(n, r);
            let bound = crate::numeric::ceil_log(n, r) as usize + 1;
            assert!(
                cache.len() <= bound,
                "cache holds {} entries at N = {n}, bound {bound}",
                cache.len()
            );
        }
    }

    #[test]
    fn clear_empties_cache() {
        let mut cache = CoresetCache::new();
        cache.insert(coreset(Span::new(1, 3), 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stored_points(), 0);
    }

    #[test]
    fn serde_round_trip_preserves_entries_in_sorted_order() {
        let mut cache = CoresetCache::new();
        for end in [9u64, 2, 5] {
            cache.insert(coreset(Span::new(1, end), end as usize));
        }
        let json = serde_json::to_string(&cache).unwrap();
        let back: CoresetCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.keys(), vec![2, 5, 9]);
        assert_eq!(back.stored_points(), cache.stored_points());
        assert_eq!(back.lookup(5).unwrap().span(), Span::new(1, 5));
        // Serialized form is key-sorted, so snapshot bytes are stable across
        // runs despite HashMap's randomized iteration order.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
