//! The snapshot-published query fast path (extension).
//!
//! The paper's headline claim is that queries are cheap; this module makes
//! them cheap *under concurrency* as well. Every clusterer can produce a
//! complete, immutable answer — centers, a coreset-estimated cost, the
//! points-seen watermark and the query diagnostics — via
//! [`StreamingClusterer::query_clustering`](crate::StreamingClusterer::query_clustering);
//! the coordinating owner publishes it into a shared [`PublishSlot`]
//! ([`ShardedStream`](crate::ShardedStream) publishes from inside its own
//! query; for the single-threaded clusterers the serving engine publishes
//! after each strict query). Concurrent readers then serve `cached`
//! queries straight from the slot: one atomically swapped `Arc` load, no
//! ingest lock, no coreset merge, no k-means++ run.
//!
//! ## Consistency model
//!
//! A published value is built in full *before* it becomes visible, and it is
//! replaced by pointer swap, never mutated in place. A reader therefore
//! always observes an internally consistent `{epoch, centers, cost,
//! points_seen, stats}` tuple — torn snapshots are impossible by
//! construction. Epochs are stamped by the slot on publish and only ever
//! grow, so readers can order observations and detect staleness
//! (`points_seen` tells them *how* stale).
//!
//! ## Why an `RwLock<Arc<…>>` and not atomics
//!
//! The workspace forbids `unsafe` and the build is offline (no `arc-swap`
//! or `crossbeam`), so the swap primitive is a standard `RwLock` around the
//! `Arc` pointer. The critical sections are pointer-sized — a reader clones
//! an `Arc`, a writer stores one — and are never held across clustering
//! work, so readers never wait on a coreset merge or a shard drain; the
//! read path is lock-free in the sense that matters for tail latency:
//! no request-visible critical section.

use crate::clusterer::QueryStats;
use serde::{Deserialize, Serialize, Value};
use skm_clustering::Centers;
use std::sync::{Arc, PoisonError, RwLock};

/// Scope of a time-windowed query answer: how many of the most recent
/// stream points the caller asked for, and how many the selected summary
/// structures actually cover.
///
/// Windows are answered from the *existing* bucket/coreset state, so
/// coverage is bucket-granular: the answer covers the smallest suffix of
/// stored summaries that contains the requested window, which means
/// `covered_points >= last_points` (never less). `covered_points` equal to
/// the stream length means the stored structure could not isolate a
/// smaller suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowInfo {
    /// The requested window, resolved to a point count (`last_secs`
    /// windows are resolved against the tenant's arrival history before
    /// reaching the clusterer).
    pub last_points: u64,
    /// Points actually covered by the summaries the answer was derived
    /// from (bucket-granular over-approximation of `last_points`).
    pub covered_points: u64,
}

/// One complete query answer, as produced by
/// [`StreamingClusterer::query_clustering`](crate::StreamingClusterer::query_clustering) —
/// the unstamped form of [`PublishedClustering`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringResult {
    /// The k cluster centers.
    pub centers: Centers,
    /// Clustering cost of `centers` over the algorithm's candidate coreset
    /// (an estimate of the SSQ over the whole stream). `NaN` when the
    /// algorithm cannot estimate it.
    pub cost: f64,
    /// Stream points observed when this answer was computed.
    pub points_seen: u64,
    /// Diagnostics of the query that produced this answer.
    pub stats: QueryStats,
    /// The time window this answer covers (`None` = the whole stream).
    pub window: Option<WindowInfo>,
}

/// An epoch-stamped, immutable query answer published through a
/// [`PublishSlot`].
///
/// Serializable so engine snapshots can persist the currently published
/// value: a restored engine republishes the same epoch and centers instead
/// of starting readers from an empty slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedClustering {
    /// Publish sequence number: 1 for the first publish of a slot, and
    /// strictly increasing afterwards (restores continue the sequence).
    pub epoch: u64,
    /// The k cluster centers of this epoch.
    pub centers: Centers,
    /// Coreset-estimated clustering cost of [`PublishedClustering::centers`]
    /// at publish time (`NaN` when unavailable).
    pub cost: f64,
    /// Stream points covered by this answer.
    pub points_seen: u64,
    /// Diagnostics of the query that produced this answer.
    pub stats: QueryStats,
    /// The time window this answer covers (`None` = the whole stream).
    pub window: Option<WindowInfo>,
}

impl PublishedClustering {
    /// Stamps an unstamped result with an epoch.
    fn stamp(epoch: u64, result: ClusteringResult) -> Self {
        Self {
            epoch,
            centers: result.centers,
            cost: result.cost,
            points_seen: result.points_seen,
            stats: result.stats,
            window: result.window,
        }
    }
}

// Serialization is hand-written (not derived) so the `window` field is
// *omitted* when absent: whole-stream snapshots keep their pre-window byte
// layout, and snapshots written before windows existed restore cleanly
// (a missing `window` field reads back as `None`).
impl Serialize for PublishedClustering {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("epoch".to_string(), self.epoch.to_value()),
            ("centers".to_string(), self.centers.to_value()),
            ("cost".to_string(), self.cost.to_value()),
            ("points_seen".to_string(), self.points_seen.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ];
        if let Some(window) = &self.window {
            map.push(("window".to_string(), window.to_value()));
        }
        Value::Map(map)
    }
}

impl Deserialize for PublishedClustering {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let map = match value {
            Value::Map(m) => m,
            _ => return Err(serde::Error::custom("expected map for PublishedClustering")),
        };
        let window = match map.iter().find(|(k, _)| k == "window") {
            Some((_, Value::Null)) | None => None,
            Some((_, v)) => Some(WindowInfo::from_value(v)?),
        };
        Ok(Self {
            epoch: Deserialize::from_value(serde::get_field(map, "epoch")?)?,
            centers: Deserialize::from_value(serde::get_field(map, "centers")?)?,
            cost: Deserialize::from_value(serde::get_field(map, "cost")?)?,
            points_seen: Deserialize::from_value(serde::get_field(map, "points_seen")?)?,
            stats: Deserialize::from_value(serde::get_field(map, "stats")?)?,
            window,
        })
    }
}

/// The shared cell a clusterer publishes its latest answer into.
///
/// Writers ([`ShardedStream::query`](crate::ShardedStream) and the serving
/// engine's strict query path) call [`PublishSlot::publish`]; any number of
/// concurrent readers call [`PublishSlot::load`] without contending with
/// ingestion. See the [module documentation](self) for the consistency
/// model and the choice of swap primitive.
#[derive(Debug, Default)]
pub struct PublishSlot {
    current: RwLock<Option<Arc<PublishedClustering>>>,
}

impl PublishSlot {
    /// Creates an empty slot (nothing published yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently published answer, if any. This is the `cached`
    /// read path: one `Arc` clone under a pointer-sized read lock.
    #[must_use]
    pub fn load(&self) -> Option<Arc<PublishedClustering>> {
        // A panic can never happen while the pointer is being cloned or
        // stored (no user code runs inside the critical section), so a
        // poisoned lock still guards a fully consistent value; recover
        // instead of propagating the poison to every later reader.
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Epoch of the currently published answer (0 when nothing has been
    /// published yet).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.load().map_or(0, |p| p.epoch)
    }

    /// Stamps `result` with the next epoch and swaps it in, returning the
    /// published value.
    pub fn publish(&self, result: ClusteringResult) -> Arc<PublishedClustering> {
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let epoch = guard.as_ref().map_or(0, |p| p.epoch) + 1;
        let published = Arc::new(PublishedClustering::stamp(epoch, result));
        *guard = Some(Arc::clone(&published));
        published
    }

    /// Replaces the slot contents with an exact previously published value
    /// (snapshot restore): the epoch sequence continues from
    /// `published.epoch` instead of restarting at 1.
    pub fn restore(&self, published: Option<PublishedClustering>) {
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        *guard = published.map(Arc::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(points_seen: u64) -> ClusteringResult {
        let mut centers = Centers::new(2);
        centers.push(&[1.0, 2.0], 10.0);
        ClusteringResult {
            centers,
            cost: 3.5,
            points_seen,
            stats: QueryStats::default(),
            window: None,
        }
    }

    #[test]
    fn empty_slot_loads_nothing() {
        let slot = PublishSlot::new();
        assert!(slot.load().is_none());
        assert_eq!(slot.epoch(), 0);
    }

    #[test]
    fn publish_stamps_monotone_epochs() {
        let slot = PublishSlot::new();
        let first = slot.publish(result(10));
        assert_eq!(first.epoch, 1);
        let second = slot.publish(result(20));
        assert_eq!(second.epoch, 2);
        let loaded = slot.load().unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.points_seen, 20);
        assert_eq!(slot.epoch(), 2);
    }

    #[test]
    fn restore_continues_the_epoch_sequence() {
        let slot = PublishSlot::new();
        slot.publish(result(10));
        slot.publish(result(20));
        let saved = slot.load().unwrap().as_ref().clone();

        let restored = PublishSlot::new();
        restored.restore(Some(saved));
        assert_eq!(restored.epoch(), 2);
        let next = restored.publish(result(30));
        assert_eq!(next.epoch, 3);

        restored.restore(None);
        assert!(restored.load().is_none());
    }

    #[test]
    fn published_value_round_trips_through_serde() {
        let slot = PublishSlot::new();
        let published = slot.publish(result(42)).as_ref().clone();
        let json = serde_json::to_string(&published).unwrap();
        // Whole-stream answers keep the pre-window byte layout.
        assert!(!json.contains("window"));
        let back: PublishedClustering = serde_json::from_str(&json).unwrap();
        assert_eq!(back, published);
    }

    #[test]
    fn windowed_published_value_round_trips_and_old_snapshots_restore() {
        let slot = PublishSlot::new();
        let mut windowed = result(42);
        windowed.window = Some(WindowInfo {
            last_points: 10,
            covered_points: 16,
        });
        let published = slot.publish(windowed).as_ref().clone();
        let json = serde_json::to_string(&published).unwrap();
        assert!(json.contains("\"window\""));
        let back: PublishedClustering = serde_json::from_str(&json).unwrap();
        assert_eq!(back, published);
        assert_eq!(
            back.window,
            Some(WindowInfo {
                last_points: 10,
                covered_points: 16,
            })
        );

        // A snapshot written before windows existed (no `window` key) must
        // restore with `window: None` — this pins snapshot back-compat.
        let stripped = json.replace(",\"window\":{\"last_points\":10,\"covered_points\":16}", "");
        assert_ne!(stripped, json, "window key should have been removable");
        let old: PublishedClustering = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.window, None);
        assert_eq!(old.centers, published.centers);
    }

    #[test]
    fn readers_see_complete_values_under_contention() {
        let slot = Arc::new(PublishSlot::new());
        std::thread::scope(|scope| {
            let writer_slot = Arc::clone(&slot);
            scope.spawn(move || {
                for i in 1..=500u64 {
                    writer_slot.publish(result(i * 10));
                }
            });
            for _ in 0..2 {
                let reader_slot = Arc::clone(&slot);
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..500 {
                        if let Some(p) = reader_slot.load() {
                            assert!(p.epoch >= last_epoch, "epoch went backwards");
                            // Published values are immutable: epoch and
                            // payload always agree.
                            assert_eq!(p.points_seen, p.epoch * 10);
                            last_epoch = p.epoch;
                        }
                    }
                });
            }
        });
        assert_eq!(slot.epoch(), 500);
    }
}
