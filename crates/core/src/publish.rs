//! The snapshot-published query fast path (extension).
//!
//! The paper's headline claim is that queries are cheap; this module makes
//! them cheap *under concurrency* as well. Every clusterer can produce a
//! complete, immutable answer — centers, a coreset-estimated cost, the
//! points-seen watermark and the query diagnostics — via
//! [`StreamingClusterer::query_clustering`](crate::StreamingClusterer::query_clustering);
//! the coordinating owner publishes it into a shared [`PublishSlot`]
//! ([`ShardedStream`](crate::ShardedStream) publishes from inside its own
//! query; for the single-threaded clusterers the serving engine publishes
//! after each strict query). Concurrent readers then serve `cached`
//! queries straight from the slot: one atomically swapped `Arc` load, no
//! ingest lock, no coreset merge, no k-means++ run.
//!
//! ## Consistency model
//!
//! A published value is built in full *before* it becomes visible, and it is
//! replaced by pointer swap, never mutated in place. A reader therefore
//! always observes an internally consistent `{epoch, centers, cost,
//! points_seen, stats}` tuple — torn snapshots are impossible by
//! construction. Epochs are stamped by the slot on publish and only ever
//! grow, so readers can order observations and detect staleness
//! (`points_seen` tells them *how* stale).
//!
//! ## Why an `RwLock<Arc<…>>` and not atomics
//!
//! The workspace forbids `unsafe` and the build is offline (no `arc-swap`
//! or `crossbeam`), so the swap primitive is a standard `RwLock` around the
//! `Arc` pointer. The critical sections are pointer-sized — a reader clones
//! an `Arc`, a writer stores one — and are never held across clustering
//! work, so readers never wait on a coreset merge or a shard drain; the
//! read path is lock-free in the sense that matters for tail latency:
//! no request-visible critical section.

use crate::clusterer::QueryStats;
use serde::{Deserialize, Serialize};
use skm_clustering::Centers;
use std::sync::{Arc, PoisonError, RwLock};

/// One complete query answer, as produced by
/// [`StreamingClusterer::query_clustering`](crate::StreamingClusterer::query_clustering) —
/// the unstamped form of [`PublishedClustering`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringResult {
    /// The k cluster centers.
    pub centers: Centers,
    /// Clustering cost of `centers` over the algorithm's candidate coreset
    /// (an estimate of the SSQ over the whole stream). `NaN` when the
    /// algorithm cannot estimate it.
    pub cost: f64,
    /// Stream points observed when this answer was computed.
    pub points_seen: u64,
    /// Diagnostics of the query that produced this answer.
    pub stats: QueryStats,
}

/// An epoch-stamped, immutable query answer published through a
/// [`PublishSlot`].
///
/// Serializable so engine snapshots can persist the currently published
/// value: a restored engine republishes the same epoch and centers instead
/// of starting readers from an empty slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedClustering {
    /// Publish sequence number: 1 for the first publish of a slot, and
    /// strictly increasing afterwards (restores continue the sequence).
    pub epoch: u64,
    /// The k cluster centers of this epoch.
    pub centers: Centers,
    /// Coreset-estimated clustering cost of [`PublishedClustering::centers`]
    /// at publish time (`NaN` when unavailable).
    pub cost: f64,
    /// Stream points covered by this answer.
    pub points_seen: u64,
    /// Diagnostics of the query that produced this answer.
    pub stats: QueryStats,
}

impl PublishedClustering {
    /// Stamps an unstamped result with an epoch.
    fn stamp(epoch: u64, result: ClusteringResult) -> Self {
        Self {
            epoch,
            centers: result.centers,
            cost: result.cost,
            points_seen: result.points_seen,
            stats: result.stats,
        }
    }
}

/// The shared cell a clusterer publishes its latest answer into.
///
/// Writers ([`ShardedStream::query`](crate::ShardedStream) and the serving
/// engine's strict query path) call [`PublishSlot::publish`]; any number of
/// concurrent readers call [`PublishSlot::load`] without contending with
/// ingestion. See the [module documentation](self) for the consistency
/// model and the choice of swap primitive.
#[derive(Debug, Default)]
pub struct PublishSlot {
    current: RwLock<Option<Arc<PublishedClustering>>>,
}

impl PublishSlot {
    /// Creates an empty slot (nothing published yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently published answer, if any. This is the `cached`
    /// read path: one `Arc` clone under a pointer-sized read lock.
    #[must_use]
    pub fn load(&self) -> Option<Arc<PublishedClustering>> {
        // A panic can never happen while the pointer is being cloned or
        // stored (no user code runs inside the critical section), so a
        // poisoned lock still guards a fully consistent value; recover
        // instead of propagating the poison to every later reader.
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Epoch of the currently published answer (0 when nothing has been
    /// published yet).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.load().map_or(0, |p| p.epoch)
    }

    /// Stamps `result` with the next epoch and swaps it in, returning the
    /// published value.
    pub fn publish(&self, result: ClusteringResult) -> Arc<PublishedClustering> {
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let epoch = guard.as_ref().map_or(0, |p| p.epoch) + 1;
        let published = Arc::new(PublishedClustering::stamp(epoch, result));
        *guard = Some(Arc::clone(&published));
        published
    }

    /// Replaces the slot contents with an exact previously published value
    /// (snapshot restore): the epoch sequence continues from
    /// `published.epoch` instead of restarting at 1.
    pub fn restore(&self, published: Option<PublishedClustering>) {
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        *guard = published.map(Arc::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(points_seen: u64) -> ClusteringResult {
        let mut centers = Centers::new(2);
        centers.push(&[1.0, 2.0], 10.0);
        ClusteringResult {
            centers,
            cost: 3.5,
            points_seen,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn empty_slot_loads_nothing() {
        let slot = PublishSlot::new();
        assert!(slot.load().is_none());
        assert_eq!(slot.epoch(), 0);
    }

    #[test]
    fn publish_stamps_monotone_epochs() {
        let slot = PublishSlot::new();
        let first = slot.publish(result(10));
        assert_eq!(first.epoch, 1);
        let second = slot.publish(result(20));
        assert_eq!(second.epoch, 2);
        let loaded = slot.load().unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.points_seen, 20);
        assert_eq!(slot.epoch(), 2);
    }

    #[test]
    fn restore_continues_the_epoch_sequence() {
        let slot = PublishSlot::new();
        slot.publish(result(10));
        slot.publish(result(20));
        let saved = slot.load().unwrap().as_ref().clone();

        let restored = PublishSlot::new();
        restored.restore(Some(saved));
        assert_eq!(restored.epoch(), 2);
        let next = restored.publish(result(30));
        assert_eq!(next.epoch, 3);

        restored.restore(None);
        assert!(restored.load().is_none());
    }

    #[test]
    fn published_value_round_trips_through_serde() {
        let slot = PublishSlot::new();
        let published = slot.publish(result(42)).as_ref().clone();
        let json = serde_json::to_string(&published).unwrap();
        let back: PublishedClustering = serde_json::from_str(&json).unwrap();
        assert_eq!(back, published);
    }

    #[test]
    fn readers_see_complete_values_under_contention() {
        let slot = Arc::new(PublishSlot::new());
        std::thread::scope(|scope| {
            let writer_slot = Arc::clone(&slot);
            scope.spawn(move || {
                for i in 1..=500u64 {
                    writer_slot.publish(result(i * 10));
                }
            });
            for _ in 0..2 {
                let reader_slot = Arc::clone(&slot);
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..500 {
                        if let Some(p) = reader_slot.load() {
                            assert!(p.epoch >= last_epoch, "epoch went backwards");
                            // Published values are immutable: epoch and
                            // payload always agree.
                            assert_eq!(p.points_seen, p.epoch * 10);
                            last_epoch = p.epoch;
                        }
                    }
                });
            }
        });
        assert_eq!(slot.epoch(), 500);
    }
}
