//! Shared configuration for the streaming clustering algorithms.

use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_coreset::construct::CoresetMethod;

/// Configuration shared by every streaming algorithm in this crate.
///
/// The defaults follow the paper's experimental setup (Section 5.2):
/// bucket size (= coreset size) `m = 20·k`, merge degree `r = 2` (the
/// streamkm++ setting), best-of-5 k-means++ runs at query time, each
/// followed by up to 20 Lloyd iterations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of cluster centers `k` returned by queries.
    pub k: usize,
    /// Base-bucket size `m`, which is also the coreset size.
    pub bucket_size: usize,
    /// Merge degree `r` of the coreset tree (`r = 2` reproduces streamkm++).
    pub merge_degree: u64,
    /// Coreset construction method.
    pub coreset_method: CoresetMethod,
    /// Number of independent k-means++ runs at query time (best kept).
    pub kmeans_runs: usize,
    /// Lloyd iterations following each k-means++ run (0 disables Lloyd).
    pub lloyd_iterations: usize,
    /// Coreset approximation parameter ε used by OnlineCC's cost-estimate
    /// correction (`φ_now = φ_prev / (1 − ε)`).
    pub epsilon: f64,
}

impl StreamConfig {
    /// Creates the default configuration for `k` clusters.
    ///
    /// # Panics
    /// Panics if `k == 0` (use [`StreamConfig::validate`] for a checked
    /// variant via manual construction).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            bucket_size: 20 * k,
            merge_degree: 2,
            coreset_method: CoresetMethod::KMeansPP,
            kmeans_runs: 5,
            lloyd_iterations: 20,
            epsilon: 0.1,
        }
    }

    /// Sets the bucket (coreset) size `m`.
    #[must_use]
    pub fn with_bucket_size(mut self, m: usize) -> Self {
        self.bucket_size = m;
        self
    }

    /// Sets the merge degree `r`.
    #[must_use]
    pub fn with_merge_degree(mut self, r: u64) -> Self {
        self.merge_degree = r;
        self
    }

    /// Sets the coreset construction method.
    #[must_use]
    pub fn with_coreset_method(mut self, method: CoresetMethod) -> Self {
        self.coreset_method = method;
        self
    }

    /// Sets the number of k-means++ runs used at query time.
    #[must_use]
    pub fn with_kmeans_runs(mut self, runs: usize) -> Self {
        self.kmeans_runs = runs;
        self
    }

    /// Sets the Lloyd iteration cap used at query time.
    #[must_use]
    pub fn with_lloyd_iterations(mut self, iterations: usize) -> Self {
        self.lloyd_iterations = iterations;
        self
    }

    /// Sets ε (only used by OnlineCC's estimate bookkeeping).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Validates the configuration, returning a descriptive error for any
    /// out-of-range parameter.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] or
    /// [`ClusteringError::InvalidK`] when a field is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(ClusteringError::InvalidK { k: self.k });
        }
        if self.bucket_size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "bucket_size",
                message: "must be positive".to_string(),
            });
        }
        if self.bucket_size < self.k {
            return Err(ClusteringError::InvalidParameter {
                name: "bucket_size",
                message: format!(
                    "bucket size {} must be at least k = {}",
                    self.bucket_size, self.k
                ),
            });
        }
        if self.merge_degree < 2 {
            return Err(ClusteringError::InvalidParameter {
                name: "merge_degree",
                message: "must be at least 2".to_string(),
            });
        }
        if self.kmeans_runs == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "kmeans_runs",
                message: "must be at least 1".to_string(),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(ClusteringError::InvalidParameter {
                name: "epsilon",
                message: "must lie in (0, 1)".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = StreamConfig::new(30);
        assert_eq!(c.bucket_size, 600);
        assert_eq!(c.merge_degree, 2);
        assert_eq!(c.kmeans_runs, 5);
        assert_eq!(c.lloyd_iterations, 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = StreamConfig::new(5)
            .with_bucket_size(200)
            .with_merge_degree(3)
            .with_kmeans_runs(2)
            .with_lloyd_iterations(0)
            .with_epsilon(0.2)
            .with_coreset_method(CoresetMethod::SensitivitySampling);
        assert_eq!(c.bucket_size, 200);
        assert_eq!(c.merge_degree, 3);
        assert_eq!(c.kmeans_runs, 2);
        assert_eq!(c.lloyd_iterations, 0);
        assert!((c.epsilon - 0.2).abs() < 1e-12);
        assert_eq!(c.coreset_method, CoresetMethod::SensitivitySampling);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(StreamConfig::new(3).with_bucket_size(0).validate().is_err());
        assert!(StreamConfig::new(10)
            .with_bucket_size(5)
            .validate()
            .is_err());
        assert!(StreamConfig::new(3)
            .with_merge_degree(1)
            .validate()
            .is_err());
        assert!(StreamConfig::new(3).with_kmeans_runs(0).validate().is_err());
        assert!(StreamConfig::new(3).with_epsilon(0.0).validate().is_err());
        assert!(StreamConfig::new(3).with_epsilon(1.5).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics_in_constructor() {
        let _ = StreamConfig::new(0);
    }
}
