//! Base-`r` digit decompositions: `major`, `minor` and `prefixsum`.
//!
//! Section 4.1 of the paper defines, for integers `n > 0` and `r ≥ 2`, the
//! unique decomposition `n = Σ_i β_i·r^{α_i}` with `0 ≤ α_0 < α_1 < …` and
//! `0 < β_i < r` (the non-zero digits of `n` written in base `r`). Then
//!
//! * `minor(n, r) = β_0·r^{α_0}` — the smallest term,
//! * `major(n, r) = n − minor(n, r)`,
//! * `prefixsum(n, r) = { n_κ | κ = 1 … j }` where `n_κ` drops the `κ`
//!   smallest non-zero digits.
//!
//! Example from the paper: `47 = 1·3³ + 2·3² + 2·3⁰`, so
//! `minor(47,3) = 2`, `major(47,3) = 45` and `prefixsum(47,3) = {27, 45}`.
//!
//! The coreset cache stores exactly the coresets whose right endpoints lie
//! in `prefixsum(N, r)`; Fact 2 (`prefixsum(N+1,r) ⊆ prefixsum(N,r) ∪ {N}`)
//! is what makes the cache maintainable with one insertion per query.

/// A single term `β·r^α` of the base-`r` decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// Digit value, `0 < β < r`.
    pub beta: u64,
    /// Digit position (power of `r`).
    pub alpha: u32,
    /// The term's value `β·r^α`.
    pub value: u64,
}

/// The non-zero terms of `n` written in base `r`, ordered from the smallest
/// power to the largest. Returns an empty vector for `n == 0`.
///
/// # Panics
/// Panics if `r < 2`.
#[must_use]
pub fn decompose(n: u64, r: u64) -> Vec<Term> {
    assert!(r >= 2, "merge degree r must be at least 2");
    let mut out = Vec::new();
    let mut rest = n;
    let mut alpha = 0u32;
    let mut power = 1u64;
    while rest > 0 {
        let beta = rest % r;
        if beta != 0 {
            out.push(Term {
                beta,
                alpha,
                value: beta * power,
            });
        }
        rest /= r;
        alpha += 1;
        power = power.saturating_mul(r);
    }
    out
}

/// `minor(n, r)`: the smallest term of the decomposition (0 when `n == 0`).
#[must_use]
pub fn minor(n: u64, r: u64) -> u64 {
    decompose(n, r).first().map_or(0, |t| t.value)
}

/// `major(n, r) = n − minor(n, r)`.
#[must_use]
pub fn major(n: u64, r: u64) -> u64 {
    n - minor(n, r)
}

/// The exponent `α` and digit `β` of `minor(n, r) = β·r^α`, or `None` when
/// `n == 0`.
#[must_use]
pub fn minor_term(n: u64, r: u64) -> Option<Term> {
    decompose(n, r).into_iter().next()
}

/// `prefixsum(n, r)`: the set `{n_κ}` obtained by dropping the `κ` smallest
/// non-zero digits, for `κ = 1 … j` where `j + 1` is the number of non-zero
/// digits. Returned in decreasing order; empty when `n` has a single
/// non-zero digit (or is zero).
#[must_use]
pub fn prefixsum(n: u64, r: u64) -> Vec<u64> {
    let terms = decompose(n, r);
    if terms.len() <= 1 {
        return Vec::new();
    }
    // suffix sums over the terms sorted by increasing alpha: dropping the κ
    // smallest digits keeps the terms κ..end.
    let mut out = Vec::with_capacity(terms.len() - 1);
    for kappa in 1..terms.len() {
        let value: u64 = terms[kappa..].iter().map(|t| t.value).sum();
        out.push(value);
    }
    // Largest first (drop most digits last => smallest value last).
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Number of non-zero digits of `n` in base `r` (written `χ(N)` in the
/// paper's Lemma 5).
#[must_use]
pub fn nonzero_digits(n: u64, r: u64) -> u32 {
    decompose(n, r).len() as u32
}

/// `⌈log_r(n)⌉` for `n ≥ 1`; 0 for `n ≤ 1`. Used by the level-bound
/// assertions in tests (Fact 1, Lemma 5).
#[must_use]
pub fn ceil_log(n: u64, r: u64) -> u32 {
    assert!(r >= 2, "merge degree r must be at least 2");
    if n <= 1 {
        return 0;
    }
    let mut power = 1u64;
    let mut exp = 0u32;
    while power < n {
        power = power.saturating_mul(r);
        exp += 1;
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_47_base_3() {
        // 47 = 1*27 + 2*9 + 2*1
        let terms = decompose(47, 3);
        assert_eq!(terms.len(), 3);
        assert_eq!(
            terms[0],
            Term {
                beta: 2,
                alpha: 0,
                value: 2
            }
        );
        assert_eq!(
            terms[1],
            Term {
                beta: 2,
                alpha: 2,
                value: 18
            }
        );
        assert_eq!(
            terms[2],
            Term {
                beta: 1,
                alpha: 3,
                value: 27
            }
        );
        assert_eq!(minor(47, 3), 2);
        assert_eq!(major(47, 3), 45);
        assert_eq!(prefixsum(47, 3), vec![45, 27]);
    }

    #[test]
    fn single_term_numbers_have_no_prefixsum_and_zero_major() {
        // n = β·r^α with a single non-zero digit.
        for n in [1u64, 2, 3, 9, 18, 27] {
            assert!(prefixsum(n, 3).is_empty(), "n = {n}");
        }
        assert_eq!(major(18, 3), 0);
        assert_eq!(minor(18, 3), 18);
    }

    #[test]
    fn zero_is_degenerate() {
        assert!(decompose(0, 2).is_empty());
        assert_eq!(minor(0, 2), 0);
        assert_eq!(major(0, 2), 0);
        assert!(prefixsum(0, 2).is_empty());
        assert_eq!(nonzero_digits(0, 2), 0);
    }

    #[test]
    fn major_plus_minor_is_n() {
        for r in [2u64, 3, 4, 7] {
            for n in 0..2000u64 {
                assert_eq!(major(n, r) + minor(n, r), n, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn prefixsum_members_are_prefixes_of_the_digit_expansion() {
        // Every member of prefixsum(n, r) must itself have major(n) as a
        // member-or-equal and be composed of the highest digits of n.
        let n = 0b1101_0110u64; // 214
        let ps = prefixsum(n, 2);
        // 214 = 128+64+16+4+2 (5 non-zero digits) -> 4 prefix sums
        assert_eq!(ps, vec![212, 208, 192, 128]);
    }

    #[test]
    fn fact_2_prefixsum_recurrence() {
        // prefixsum(N+1, r) ⊆ prefixsum(N, r) ∪ {N}
        for r in [2u64, 3, 5] {
            for n in 1..3000u64 {
                let next = prefixsum(n + 1, r);
                let mut allowed = prefixsum(n, r);
                allowed.push(n);
                for v in next {
                    assert!(
                        allowed.contains(&v),
                        "prefixsum({}, {r}) contains {v} which is not in prefixsum({n}, {r}) ∪ {{{n}}}",
                        n + 1
                    );
                }
            }
        }
    }

    #[test]
    fn major_is_in_prefixsum_when_nonzero() {
        for r in [2u64, 3, 4] {
            for n in 1..2000u64 {
                let m = major(n, r);
                if m != 0 {
                    assert!(prefixsum(n, r).contains(&m), "n={n} r={r} major={m}");
                }
            }
        }
    }

    #[test]
    fn nonzero_digit_count() {
        assert_eq!(nonzero_digits(47, 3), 3);
        assert_eq!(nonzero_digits(27, 3), 1);
        assert_eq!(nonzero_digits(255, 2), 8);
    }

    #[test]
    fn ceil_log_values() {
        assert_eq!(ceil_log(1, 2), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(3, 2), 2);
        assert_eq!(ceil_log(8, 2), 3);
        assert_eq!(ceil_log(9, 3), 2);
        assert_eq!(ceil_log(10, 3), 3);
        assert_eq!(ceil_log(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn r_less_than_two_panics() {
        let _ = decompose(5, 1);
    }
}
