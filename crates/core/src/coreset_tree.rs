//! The r-way merging coreset tree (CT) — Algorithm 2 of the paper.
//!
//! CT is the prior-art baseline (it generalizes streamkm++, which is the
//! special case `r = 2`). It maintains buckets at multiple levels:
//!
//! * level-0 buckets ("base buckets") hold `m` original input points;
//! * a level-`j` bucket is a coreset summarizing `r^j` base buckets.
//!
//! The distribution of buckets over levels mirrors the base-`r`
//! representation of the number `N` of base buckets inserted so far: if
//! `N = (s_q … s_1 s_0)_r` then level `i` holds exactly `s_i` buckets.
//! Inserting a base bucket is like incrementing a base-`r` counter: whenever
//! a level accumulates `r` buckets they are merged (reduced) into one bucket
//! at the next level.
//!
//! Answering a query unions **all** active buckets — up to `(r−1)·log_r N`
//! of them — which is exactly the cost the paper's CC/RCC algorithms avoid.

use crate::config::StreamConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::error::Result;
use skm_clustering::PointSet;
use skm_coreset::construct::CoresetBuilder;
use skm_coreset::coreset::Coreset;
use skm_coreset::merge::merge_coresets;

/// The r-way merging coreset tree.
///
/// Serialization captures the full structure (levels, merge degree,
/// builder, insertion count), so a deserialized tree continues exactly
/// where the serialized one stopped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoresetTree {
    /// `levels[j]` holds the active buckets of level `j`, oldest first.
    levels: Vec<Vec<Coreset>>,
    /// Merge degree `r ≥ 2`.
    merge_degree: u64,
    /// Coreset constructor used when merging.
    builder: CoresetBuilder,
    /// Number of base buckets inserted so far (`N`).
    buckets_inserted: u64,
}

impl CoresetTree {
    /// Creates an empty tree from the shared configuration.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &StreamConfig) -> Result<Self> {
        config.validate()?;
        let builder = CoresetBuilder::new(config.k)
            .with_size(config.bucket_size)
            .with_method(config.coreset_method);
        Ok(Self {
            levels: Vec::new(),
            merge_degree: config.merge_degree,
            builder,
            buckets_inserted: 0,
        })
    }

    /// Merge degree `r`.
    #[must_use]
    pub fn merge_degree(&self) -> u64 {
        self.merge_degree
    }

    /// Number of base buckets inserted so far (`N`).
    #[must_use]
    pub fn buckets_inserted(&self) -> u64 {
        self.buckets_inserted
    }

    /// The coreset builder used for merges (shared with the cache logic in
    /// CC so both use identical construction parameters).
    #[must_use]
    pub fn builder(&self) -> &CoresetBuilder {
        &self.builder
    }

    /// `CT-Update` (Algorithm 2): inserts one full base bucket of original
    /// points and performs any merges required to restore the digit
    /// invariant.
    ///
    /// # Errors
    /// Propagates coreset-construction errors.
    pub fn insert_bucket<R: Rng + ?Sized>(&mut self, bucket: PointSet, rng: &mut R) -> Result<()> {
        self.buckets_inserted += 1;
        let base = Coreset::base_bucket(bucket, self.buckets_inserted);
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(base);

        let r = self.merge_degree as usize;
        let mut j = 0;
        while j < self.levels.len() && self.levels[j].len() >= r {
            let group: Vec<Coreset> = self.levels[j].drain(..).collect();
            let merged = merge_coresets(&group, &self.builder, rng)?;
            if self.levels.len() == j + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[j + 1].push(merged);
            j += 1;
        }
        Ok(())
    }

    /// `CT-Coreset` (Algorithm 2): all active buckets across all levels.
    /// The returned references are ordered from the highest level (oldest
    /// data) to level 0 (newest data).
    #[must_use]
    pub fn active_coresets(&self) -> Vec<&Coreset> {
        let mut out = Vec::new();
        for level in self.levels.iter().rev() {
            for c in level {
                out.push(c);
            }
        }
        out
    }

    /// Buckets currently stored at `level` (empty slice when the level does
    /// not exist).
    #[must_use]
    pub fn level(&self, level: usize) -> &[Coreset] {
        self.levels.get(level).map_or(&[], Vec::as_slice)
    }

    /// Number of levels with at least one active bucket.
    #[must_use]
    pub fn active_levels(&self) -> usize {
        self.levels.iter().filter(|l| !l.is_empty()).count()
    }

    /// Highest level index holding an active bucket, or `None` when empty.
    #[must_use]
    pub fn max_level(&self) -> Option<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i, _)| i)
            .next_back()
    }

    /// Union of all active buckets as one weighted point set, together with
    /// the number of buckets unioned and the maximum coreset level among
    /// them. Thin wrapper over [`CoresetTree::union_all_block`] (the form
    /// the query path consumes).
    ///
    /// Returns `(empty set, 0, 0)` when the tree holds no buckets.
    #[must_use]
    pub fn union_all(&self, dim_hint: usize) -> (PointSet, usize, u32) {
        let (block, merged, max_level) = self.union_all_block(dim_hint);
        (block.into_point_set(), merged, max_level)
    }

    /// Like [`CoresetTree::union_all`], but the union is assembled as a
    /// norm-cached [`skm_clustering::PointBlock`] so the query-side k-means
    /// runs entirely on the fused kernels without a separate norm pass.
    #[must_use]
    pub fn union_all_block(&self, dim_hint: usize) -> (skm_clustering::PointBlock, usize, u32) {
        let coresets = self.active_coresets();
        if coresets.is_empty() {
            return (skm_clustering::PointBlock::new(dim_hint.max(1)), 0, 0);
        }
        let dim = coresets[0].points().dim();
        let total: usize = coresets.iter().map(|c| c.len()).sum();
        let mut union = skm_clustering::PointBlock::with_capacity(dim, total);
        let mut max_level = 0;
        for c in &coresets {
            union
                .extend_from_set(c.points())
                .expect("all tree buckets share one dimension");
            max_level = max_level.max(c.level());
        }
        (union, coresets.len(), max_level)
    }

    /// Total number of (weighted) points stored across all buckets.
    #[must_use]
    pub fn stored_points(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|level| level.iter().map(Coreset::len))
            .sum()
    }

    /// Total weight stored across all buckets. Because every merge preserves
    /// total weight, this always equals the number of points fed into the
    /// tree (with unit weights); tests rely on this invariant.
    #[must_use]
    pub fn stored_weight(&self) -> f64 {
        self.levels
            .iter()
            .flat_map(|level| level.iter().map(Coreset::total_weight))
            .sum()
    }

    /// Checks the digit invariant: writing `N` in base `r`, level `i` must
    /// hold exactly `s_i` buckets. Returns `true` when the invariant holds.
    #[must_use]
    pub fn digit_invariant_holds(&self) -> bool {
        let r = self.merge_degree;
        let mut n = self.buckets_inserted;
        let mut level = 0usize;
        loop {
            let digit = (n % r) as usize;
            let actual = self.levels.get(level).map_or(0, Vec::len);
            if actual != digit {
                return false;
            }
            n /= r;
            level += 1;
            if n == 0 {
                break;
            }
        }
        // Any remaining levels must be empty.
        self.levels[level.min(self.levels.len())..]
            .iter()
            .all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::ceil_log;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bucket(dim: usize, m: usize, offset: f64) -> PointSet {
        let mut s = PointSet::new(dim);
        for i in 0..m {
            let mut p = vec![offset; dim];
            p[0] += i as f64 * 0.01;
            s.push(&p, 1.0);
        }
        s
    }

    fn tree(k: usize, m: usize, r: u64) -> CoresetTree {
        let config = StreamConfig::new(k)
            .with_bucket_size(m)
            .with_merge_degree(r);
        CoresetTree::new(&config).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = tree(2, 40, 3);
        assert_eq!(t.buckets_inserted(), 0);
        assert_eq!(t.stored_points(), 0);
        assert!(t.max_level().is_none());
        assert!(t.digit_invariant_holds());
        let (u, merged, level) = t.union_all(2);
        assert!(u.is_empty());
        assert_eq!(merged, 0);
        assert_eq!(level, 0);
    }

    #[test]
    fn figure_1_three_way_tree_shape() {
        // Reproduces Figure 1 of the paper: a 3-way tree after 1, 4, 6 and 9
        // base buckets.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut t = tree(2, 30, 3);

        // (a) after 1 bucket: one level-0 bucket.
        t.insert_bucket(bucket(2, 30, 0.0), &mut rng).unwrap();
        assert_eq!(t.level(0).len(), 1);
        assert!(t.digit_invariant_holds());

        // (b) after 4 buckets: 4 = (1,1)_3 -> one level-1, one level-0.
        for i in 1..4 {
            t.insert_bucket(bucket(2, 30, f64::from(i)), &mut rng)
                .unwrap();
        }
        assert_eq!(t.level(0).len(), 1);
        assert_eq!(t.level(1).len(), 1);
        assert_eq!(t.level(1)[0].span(), skm_coreset::Span::new(1, 3));
        assert!(t.digit_invariant_holds());

        // (c) after 6 buckets: 6 = (2,0)_3 -> two level-1, zero level-0.
        for i in 4..6 {
            t.insert_bucket(bucket(2, 30, f64::from(i)), &mut rng)
                .unwrap();
        }
        assert_eq!(t.level(0).len(), 0);
        assert_eq!(t.level(1).len(), 2);
        assert_eq!(t.level(1)[1].span(), skm_coreset::Span::new(4, 6));
        assert!(t.digit_invariant_holds());

        // (d) after 9 buckets: 9 = (1,0,0)_3 -> a single level-2 bucket.
        for i in 6..9 {
            t.insert_bucket(bucket(2, 30, f64::from(i)), &mut rng)
                .unwrap();
        }
        assert_eq!(t.level(0).len(), 0);
        assert_eq!(t.level(1).len(), 0);
        assert_eq!(t.level(2).len(), 1);
        assert_eq!(t.level(2)[0].span(), skm_coreset::Span::new(1, 9));
        assert!(t.digit_invariant_holds());
    }

    #[test]
    fn digit_invariant_holds_for_many_n_and_r() {
        for r in [2u64, 3, 4] {
            let mut rng = ChaCha8Rng::seed_from_u64(r);
            let mut t = tree(2, 8, r);
            for i in 0..40 {
                t.insert_bucket(bucket(2, 8, f64::from(i)), &mut rng)
                    .unwrap();
                assert!(t.digit_invariant_holds(), "r = {r}, N = {}", i + 1);
            }
        }
    }

    #[test]
    fn fact_1_level_bound() {
        // Fact 1: the maximum level is at most ceil(log_r N).
        let r = 2u64;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut t = tree(2, 8, r);
        for i in 0..64 {
            t.insert_bucket(bucket(2, 8, f64::from(i)), &mut rng)
                .unwrap();
            let n = t.buckets_inserted();
            if let Some(max_level) = t.max_level() {
                assert!(
                    max_level as u32 <= ceil_log(n, r),
                    "N = {n}: level {max_level} exceeds bound {}",
                    ceil_log(n, r)
                );
            }
            // The level metadata of every bucket matches its position.
            for (j, level) in (0..).zip(&t.levels) {
                for c in level {
                    assert_eq!(c.level(), j as u32);
                }
            }
        }
    }

    #[test]
    fn weight_is_preserved_across_merges() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut t = tree(3, 20, 2);
        for i in 0..17 {
            t.insert_bucket(bucket(2, 20, f64::from(i)), &mut rng)
                .unwrap();
        }
        // 17 buckets x 20 unit-weight points.
        assert!((t.stored_weight() - 340.0).abs() < 1e-6);
        let (u, merged, _) = t.union_all(2);
        assert!((u.total_weight() - 340.0).abs() < 1e-6);
        assert_eq!(merged, t.active_coresets().len());
    }

    #[test]
    fn memory_stays_bounded_by_r_buckets_per_level() {
        let r = 3u64;
        let m = 15usize;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut t = tree(2, m, r);
        for i in 0..100 {
            t.insert_bucket(bucket(2, m, f64::from(i)), &mut rng)
                .unwrap();
            for level in &t.levels {
                assert!(level.len() < r as usize);
            }
            // Total memory <= (r-1) * m * number of levels.
            let bound = (r as usize - 1) * m * (ceil_log(t.buckets_inserted(), r) as usize + 1);
            assert!(t.stored_points() <= bound);
        }
    }

    #[test]
    fn union_reports_merged_count_and_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut t = tree(2, 10, 2);
        for i in 0..7 {
            t.insert_bucket(bucket(2, 10, f64::from(i)), &mut rng)
                .unwrap();
        }
        // 7 = (1,1,1)_2: one bucket at each of levels 0, 1, 2.
        let (_, merged, max_level) = t.union_all(2);
        assert_eq!(merged, 3);
        assert_eq!(max_level, 2);
    }
}
