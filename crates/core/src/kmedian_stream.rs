//! Streaming k-median with coreset caching (extension).
//!
//! The paper's conclusion suggests that the coreset-caching framework
//! extends naturally to streaming k-median. This module provides that
//! extension: [`KMedianCC`] reuses the Cached Coreset Tree (CC) machinery
//! verbatim — the same buckets, merge rule, cache and eviction policy — and
//! only changes the query-side extraction step, replacing k-means++ /
//! Lloyd by D-sampling seeding and Weiszfeld (geometric-median) refinement.
//!
//! This works because the k-means++-style coreset construction preserves
//! weighted point mass per region; a summary that approximates the k-means
//! objective for all center sets also approximates the k-median objective
//! up to slightly weaker constants (formally, via the standard
//! `D(x,Ψ) ≤ √(D²(x,Ψ))` relation and the bounded diameter of each
//! assignment cell), which is sufficient for the qualitative behaviour the
//! extension aims to demonstrate.

use crate::cc::CachedCoresetTree;
use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use skm_clustering::error::Result;
use skm_clustering::kmedian::{kmedian_refine, kmedianpp};
use skm_clustering::Centers;

/// Streaming k-median clusterer built on the CC structure.
#[derive(Debug, Clone)]
pub struct KMedianCC {
    config: StreamConfig,
    inner: CachedCoresetTree,
    rng: ChaCha20Rng,
    /// Rounds of assign/re-median refinement at query time.
    refine_rounds: usize,
    /// Weiszfeld iterations per refinement round.
    weiszfeld_iterations: usize,
    last_stats: Option<QueryStats>,
}

impl KMedianCC {
    /// Creates a streaming k-median clusterer with the given configuration.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: StreamConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            inner: CachedCoresetTree::new(config, seed.wrapping_add(17))?,
            rng: ChaCha20Rng::seed_from_u64(seed),
            refine_rounds: 3,
            weiszfeld_iterations: 20,
            last_stats: None,
        })
    }

    /// Overrides the number of refinement rounds used at query time.
    #[must_use]
    pub fn with_refine_rounds(mut self, rounds: usize) -> Self {
        self.refine_rounds = rounds;
        self
    }

    /// Overrides the Weiszfeld iteration count per refinement round.
    #[must_use]
    pub fn with_weiszfeld_iterations(mut self, iterations: usize) -> Self {
        self.weiszfeld_iterations = iterations;
        self
    }

    /// The configuration this clusterer was built with.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

impl StreamingClusterer for KMedianCC {
    fn name(&self) -> &'static str {
        "KMedianCC"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        self.inner.update(point)
    }

    fn query(&mut self) -> Result<Centers> {
        let (candidates, mut stats) = self.inner.query_candidates()?;
        // k-median works on plain Euclidean (not squared) distances, so the
        // norm cache does not apply; move the buffers out without copying.
        let candidates = candidates.into_point_set();
        let seeded = kmedianpp(&candidates, self.config.k, &mut self.rng)?;
        let (centers, _cost) = if self.refine_rounds == 0 {
            let cost = skm_clustering::kmedian::kmedian_cost(&candidates, &seeded)?;
            (seeded, cost)
        } else {
            kmedian_refine(
                &candidates,
                &seeded,
                self.refine_rounds,
                self.weiszfeld_iterations,
            )?
        };
        stats.ran_kmeans = true;
        self.last_stats = Some(stats);
        Ok(centers)
    }

    fn memory_points(&self) -> usize {
        self.inner.memory_points()
    }

    fn points_seen(&self) -> u64 {
        self.inner.points_seen()
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use skm_clustering::kmedian::kmedian_cost;
    use skm_clustering::PointSet;

    fn config(k: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(20 * k)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2)
    }

    #[test]
    fn query_before_points_is_error() {
        let mut km = KMedianCC::new(config(3), 0).unwrap();
        assert!(km.query().is_err());
    }

    #[test]
    fn finds_separated_clusters() {
        let mut km = KMedianCC::new(config(3), 7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let anchors = [[0.0, 0.0], [60.0, 0.0], [0.0, 60.0]];
        for i in 0..2_400usize {
            let a = anchors[i % 3];
            km.update(&[a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()])
                .unwrap();
        }
        let centers = km.query().unwrap();
        assert_eq!(centers.len(), 3);
        for anchor in [[0.5, 0.5], [60.5, 0.5], [0.5, 60.5]] {
            let nearest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 3.0, "anchor {anchor:?} missed by {nearest}");
        }
    }

    #[test]
    fn kmedian_centers_are_more_robust_to_outliers_than_kmeans() {
        // A single extreme outlier: the k-median center of the main blob
        // should stay near the blob; the (k=1) k-means center is dragged
        // noticeably toward the outlier.
        let mut km = KMedianCC::new(config(1).with_bucket_size(50), 3).unwrap();
        let mut cc = CachedCoresetTree::new(config(1).with_bucket_size(50), 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut all = PointSet::new(1);
        for i in 0..600usize {
            let p = if i == 300 {
                [100_000.0]
            } else {
                [rng.gen::<f64>()]
            };
            km.update(&p).unwrap();
            cc.update(&p).unwrap();
            all.push(&p, 1.0);
        }
        let median_center = km.query().unwrap().center(0)[0];
        let mean_center = cc.query().unwrap().center(0)[0];
        assert!(
            median_center < 10.0,
            "k-median center {median_center} should ignore the outlier"
        );
        assert!(
            mean_center > median_center,
            "k-means center {mean_center} should be pulled further than {median_center}"
        );
    }

    #[test]
    fn memory_matches_inner_cc() {
        let mut km = KMedianCC::new(config(4), 11).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..2_000 {
            km.update(&[rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
                .unwrap();
        }
        assert_eq!(km.points_seen(), 2_000);
        assert!(km.memory_points() < 1_000);
        km.query().unwrap();
        let cost_probe = kmedian_cost(
            &PointSet::from_rows(3, vec![0.5; 3], vec![1.0]).unwrap(),
            &km.query().unwrap(),
        )
        .unwrap();
        assert!(cost_probe.is_finite());
    }
}
