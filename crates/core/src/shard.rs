//! Sharded, multi-threaded stream ingestion (extension).
//!
//! The paper's algorithms make a *single* update thread fast; this module
//! scales ingestion horizontally, the way the coreset machinery was built
//! to be scaled: partition the stream across `S` shards, let each shard
//! maintain its own clusterer (CT, CC or RCC) on a dedicated worker
//! thread, and at query time union the per-shard coreset summaries into
//! one candidate set for the usual k-means++ extraction. Because every
//! shard summarizes a *disjoint* sub-stream, Observation 1 applies: the
//! union of the per-shard `(k, ε)`-coresets is a `(k, ε)`-coreset of the
//! whole stream, so sharding costs no approximation quality beyond the
//! coreset guarantee the single-threaded algorithms already pay.
//!
//! ## Architecture
//!
//! * **Partitioning** is deterministic round-robin by arrival index: point
//!   `i` belongs to shard `i mod S`. Combined with per-shard seeds derived
//!   from the master seed, this makes the whole structure reproducible:
//!   for a fixed `(seed, shards, batch_size)` the merged query answer is
//!   bit-identical across runs regardless of thread scheduling, because
//!   each worker consumes a deterministic sub-stream and all cross-thread
//!   communication is ordered per-shard FIFO.
//! * **Batching**: the ingestion thread buffers each shard's points into a
//!   flat coordinate block and ships full blocks over an [`mpsc`] channel;
//!   workers ingest them via [`StreamingClusterer::update_batch`], so the
//!   per-point cost on both sides of the channel is amortized (one send
//!   per `batch_size` points, one dimension check and norm pass per batch).
//! * **Queries** enqueue a query command behind any in-flight batches
//!   (channel FIFO ⇒ a query observes every point accepted before it),
//!   collect the per-shard candidate blocks *in shard order*, union them
//!   with [`skm_coreset::merge::union_blocks`] and run the shared
//!   [`extract_centers_block`](crate::driver::extract_centers_block)
//!   driver on the result. The complete answer
//!   (centers, cost estimate, watermark, diagnostics) is then republished
//!   through a shared [`PublishSlot`], so
//!   concurrent readers can serve stale-but-consistent answers without
//!   stopping ingestion (see [`crate::publish`]).
//!
//! Sharding pays off when update cost dominates (frequent arrivals, spare
//! cores); on a single core it only adds channel overhead. Note that the
//! answer is deterministic for a fixed shard count but *not* identical
//! across different shard counts — the stream is partitioned differently,
//! so different (equally valid) coresets are built.

use crate::cc::CachedCoresetTree;
use crate::clusterer::{QueryStats, StreamingClusterer};
use crate::config::StreamConfig;
use crate::ct::CoresetTreeClusterer;
use crate::driver::extract_clustering_result;
use crate::publish::{ClusteringResult, PublishSlot, PublishedClustering};
use crate::rcc::RecursiveCachedTree;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{Centers, PointBlock};
use skm_coreset::merge::union_blocks;
use std::sync::{mpsc, Arc};
use std::thread;

/// Default number of points buffered per shard before a batch is shipped
/// to its worker thread.
pub const DEFAULT_BATCH_SIZE: usize = 128;

/// Upper bound on the shard count (a guard against typos like passing a
/// point count where a shard count belongs — far above any sensible
/// configuration, which tracks the machine's core count).
pub const MAX_SHARDS: usize = 256;

/// A streaming clusterer that can serve as a shard worker: besides the
/// per-point interface it exposes its query-time candidate coreset (as a
/// norm-cached block) so a coordinator can merge summaries across shards.
///
/// `Clone` lets the coordinator snapshot a worker's state without stopping
/// it (the worker ships a clone of itself over the reply channel and keeps
/// processing).
pub trait ShardClusterer: StreamingClusterer + Clone + Send + 'static {
    /// The candidate points a query would hand to k-means++, summarizing
    /// everything this shard has absorbed, plus query diagnostics.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when the shard has seen no
    /// points (the coordinator skips such shards).
    fn shard_candidates(&mut self) -> Result<(PointBlock, QueryStats)>;

    /// The candidate points covering (at least) this shard's most recent
    /// `last_points` points, plus diagnostics and the exact number of
    /// points covered (bucket-granular, `>= last_points`). A window
    /// spanning the shard's whole sub-stream falls back to
    /// [`shard_candidates`](ShardClusterer::shard_candidates), with
    /// coverage equal to the shard's point count.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when the shard has seen no
    /// points, and window-validation errors for `last_points == 0`.
    fn shard_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)>;

    /// The coverage [`shard_window_candidates`] would report for this
    /// window, computed without touching any state (no merge, no RNG, no
    /// cache traffic). `0` when the shard is empty.
    ///
    /// [`shard_window_candidates`]: ShardClusterer::shard_window_candidates
    fn shard_window_coverage(&self, last_points: u64) -> u64;
}

impl ShardClusterer for CoresetTreeClusterer {
    fn shard_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        self.query_candidates()
    }

    fn shard_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::clusterer::validate_window_points(last_points)?;
        if last_points >= self.points_seen() {
            let seen = self.points_seen();
            let (block, stats) = self.query_candidates()?;
            return Ok((block, stats, seen));
        }
        self.query_window_candidates(last_points)
    }

    fn shard_window_coverage(&self, last_points: u64) -> u64 {
        self.window_coverage(last_points)
    }
}

impl ShardClusterer for CachedCoresetTree {
    fn shard_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        self.query_candidates()
    }

    fn shard_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::clusterer::validate_window_points(last_points)?;
        if last_points >= self.points_seen() {
            let seen = self.points_seen();
            let (block, stats) = self.query_candidates()?;
            return Ok((block, stats, seen));
        }
        self.query_window_candidates(last_points)
    }

    fn shard_window_coverage(&self, last_points: u64) -> u64 {
        self.window_coverage(last_points)
    }
}

impl ShardClusterer for RecursiveCachedTree {
    fn shard_candidates(&mut self) -> Result<(PointBlock, QueryStats)> {
        self.query_candidates()
    }

    fn shard_window_candidates(
        &mut self,
        last_points: u64,
    ) -> Result<(PointBlock, QueryStats, u64)> {
        crate::clusterer::validate_window_points(last_points)?;
        if last_points >= self.points_seen() {
            let seen = self.points_seen();
            let (block, stats) = self.query_candidates()?;
            return Ok((block, stats, seen));
        }
        self.query_window_candidates(last_points)
    }

    fn shard_window_coverage(&self, last_points: u64) -> u64 {
        self.window_coverage(last_points)
    }
}

/// Commands the ingestion thread sends to a shard worker. Replies travel
/// over per-request channels so a worker never blocks on a slow consumer.
enum ShardCmd<C> {
    /// A flat row-major batch of `coords.len() / dim` points to ingest.
    Batch { dim: usize, coords: Vec<f64> },
    /// Produce the shard's candidate coreset (`None` when the shard is
    /// empty). Ordered behind all previously sent batches, so the answer
    /// covers every point accepted before the query.
    Query {
        reply: mpsc::Sender<Result<Option<(PointBlock, QueryStats)>>>,
    },
    /// Produce the shard's candidate coreset for its most recent
    /// `last_points` points (`None` when the shard is empty), together
    /// with the exact point coverage. FIFO-ordered like `Query`.
    WindowQuery {
        last_points: u64,
        reply: mpsc::Sender<Result<Option<(PointBlock, QueryStats, u64)>>>,
    },
    /// Report `(memory_points, points_seen)`; also used as a cheap barrier
    /// that drains the shard's queue.
    Stats { reply: mpsc::Sender<(usize, u64)> },
    /// Report how many points the shard's stored summaries would cover for
    /// a window over its most recent `last_points` points — pure span
    /// arithmetic, no merge, no RNG, no state change (windowed stats must
    /// be as side-effect-free as plain stats, or WAL replay equivalence
    /// breaks).
    WindowCoverage {
        last_points: u64,
        reply: mpsc::Sender<u64>,
    },
    /// Ship a clone of the clusterer's current state back to the
    /// coordinator (snapshot support). Ordered behind all previously sent
    /// batches, so the clone covers every point routed to this shard.
    Snapshot { reply: mpsc::Sender<Result<C>> },
}

/// The worker loop: owns one clusterer and processes commands FIFO until
/// the coordinator drops its sender. The first update error is latched and
/// reported on the next query instead of killing the thread, so the
/// coordinator can surface it as a normal `Result`.
fn shard_worker<C: ShardClusterer>(mut clusterer: C, commands: &mpsc::Receiver<ShardCmd<C>>) {
    let mut failed: Option<ClusteringError> = None;
    while let Ok(cmd) = commands.recv() {
        match cmd {
            ShardCmd::Batch { dim, coords } => {
                if failed.is_none() {
                    let points: Vec<&[f64]> = coords.chunks_exact(dim).collect();
                    if let Err(e) = clusterer.update_batch(&points) {
                        failed = Some(e);
                    }
                }
            }
            ShardCmd::Query { reply } => {
                let response = match &failed {
                    Some(e) => Err(e.clone()),
                    None if clusterer.points_seen() == 0 => Ok(None),
                    None => clusterer.shard_candidates().map(Some),
                };
                let _ = reply.send(response);
            }
            ShardCmd::WindowQuery { last_points, reply } => {
                let response = match &failed {
                    Some(e) => Err(e.clone()),
                    None if clusterer.points_seen() == 0 => Ok(None),
                    None => clusterer.shard_window_candidates(last_points).map(Some),
                };
                let _ = reply.send(response);
            }
            ShardCmd::Stats { reply } => {
                let _ = reply.send((clusterer.memory_points(), clusterer.points_seen()));
            }
            ShardCmd::WindowCoverage { last_points, reply } => {
                let _ = reply.send(clusterer.shard_window_coverage(last_points));
            }
            ShardCmd::Snapshot { reply } => {
                let response = match &failed {
                    Some(e) => Err(e.clone()),
                    None => Ok(clusterer.clone()),
                };
                let _ = reply.send(response);
            }
        }
    }
}

/// Error reported when a shard's worker thread is gone (it panicked or was
/// torn down); ingestion cannot continue correctly past a lost shard.
fn shard_disconnected(shard: usize) -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: "shard",
        message: format!("worker thread of shard {shard} disconnected"),
    }
}

/// Derives a per-shard seed from the master seed (splitmix-style odd
/// multiplier keeps the seeds distinct and uncorrelated across shards).
fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1)
}

/// Maps a serde failure while restoring a snapshot to a clustering error.
fn snapshot_error(e: serde::Error) -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: "snapshot",
        message: e.to_string(),
    }
}

/// Aggregate statistics of a [`ShardedStream`], as reported by
/// [`ShardedStream::stats`]. Serializable so serving layers can hand it
/// straight to a wire protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Total points accepted by the coordinator.
    pub points_seen: u64,
    /// Number of shards (worker threads).
    pub shards: usize,
    /// Points absorbed by each shard's clusterer, in shard order. When
    /// produced by [`ShardedStream::stats`] it sums to
    /// [`StreamStats::points_seen`] (the coordinator's buffers are flushed
    /// before collecting). Serving layers answering a *cached* stats
    /// request leave it **empty** instead: exact per-shard counts require
    /// a drain, which the lock-free read path deliberately avoids.
    pub per_shard_points: Vec<u64>,
    /// Diagnostics of the most recent query (`None` before the first).
    pub last_query: Option<QueryStats>,
}

/// Serialized form of a [`ShardedStream`], produced by
/// [`ShardedStream::snapshot`] and consumed by [`ShardedStream::restore`].
///
/// The per-shard clusterer states are stored in the self-describing
/// [`serde::Value`] form so this struct stays non-generic (the concrete
/// worker type is fixed again at restore time). Restoring a snapshot and
/// continuing the stream is bit-identical to never having stopped: the
/// coordinator RNG, per-shard clusterer states (including their RNG
/// positions and partial buckets) and the round-robin cursor are all
/// captured exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedStreamState {
    /// Configuration shared by every shard.
    pub config: StreamConfig,
    /// Points buffered per shard before a batch ships to its worker.
    pub batch_size: usize,
    /// Stream dimension learned from the first accepted point, if any.
    pub dim: Option<usize>,
    /// Shard the next arrival will be routed to.
    pub next_shard: usize,
    /// Total points accepted before the snapshot.
    pub points_seen: u64,
    /// Query-side k-means++ RNG, captured mid-stream.
    pub rng: ChaCha20Rng,
    /// Diagnostics of the most recent query at snapshot time.
    pub last_stats: Option<QueryStats>,
    /// The answer published at snapshot time, if any: restoring republishes
    /// it so the restored stream's readers continue from the same epoch
    /// instead of an empty slot.
    pub published: Option<PublishedClustering>,
    /// Per-shard clusterer states, in shard order.
    pub shards: Vec<serde::Value>,
}

/// Sharded multi-threaded ingestion over any [`ShardClusterer`].
///
/// See the [module documentation](self) for the architecture. Construct
/// with [`ShardedStream::with_factory`] (any clusterer) or the
/// [`cc`](ShardedStream::cc) / [`ct`](ShardedStream::ct) /
/// [`rcc`](ShardedStream::rcc) shorthands, then drive it through the
/// ordinary [`StreamingClusterer`] interface.
///
/// Every query republishes its full answer through a shared
/// [`PublishSlot`], so concurrent readers can serve stale-but-consistent
/// answers without stopping ingestion:
///
/// ```rust
/// use skm_stream::{ShardedStream, StreamConfig, StreamingClusterer};
///
/// let config = StreamConfig::new(2).with_bucket_size(20).with_kmeans_runs(1);
/// // 2 shards, 8-point batches, seed 7.
/// let mut stream = ShardedStream::cc(config, 2, 8, 7).unwrap();
/// for i in 0..200u32 {
///     let x = if i % 2 == 0 { 0.0 } else { 100.0 };
///     stream.update(&[x, f64::from(i % 10)]).unwrap();
/// }
/// let centers = stream.query().unwrap();
/// assert_eq!(centers.len(), 2);
///
/// // The query's answer is now published: another thread holding a clone
/// // of `stream.publish_slot()` reads it without touching the stream.
/// let published = stream.published().unwrap();
/// assert_eq!(published.epoch, 1);
/// assert_eq!(published.centers, centers);
/// assert_eq!(published.points_seen, 200);
/// ```
#[derive(Debug)]
pub struct ShardedStream<C: ShardClusterer> {
    config: StreamConfig,
    batch_size: usize,
    /// Stream dimension, fixed by the first point ever observed.
    dim: Option<usize>,
    senders: Vec<mpsc::Sender<ShardCmd<C>>>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Per-shard flat coordinate buffers awaiting shipment.
    pending: Vec<Vec<f64>>,
    /// Shard of the next arrival (round-robin by arrival index).
    next_shard: usize,
    points_seen: u64,
    /// Query-side RNG (k-means++ extraction over the merged candidates).
    rng: ChaCha20Rng,
    last_stats: Option<QueryStats>,
    /// Shared cell the latest query answer is published into (the
    /// lock-free read path; see [`crate::publish`]).
    publish: Arc<PublishSlot>,
}

impl<C: ShardClusterer> ShardedStream<C> {
    /// Creates a sharded stream whose `shards` workers are built by
    /// `factory(shard_index, shard_seed)`. The factory runs on the calling
    /// thread; each clusterer is then moved onto its worker thread.
    ///
    /// `seed` drives both the per-shard seeds handed to `factory` and the
    /// query-side k-means++ RNG, making results reproducible for a fixed
    /// `(seed, shards)`.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for an invalid
    /// configuration, shard count, or batch size, and propagates factory
    /// failures.
    pub fn with_factory<F>(
        config: StreamConfig,
        shards: usize,
        batch_size: usize,
        seed: u64,
        mut factory: F,
    ) -> Result<Self>
    where
        F: FnMut(usize, u64) -> Result<C>,
    {
        config.validate()?;
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ClusteringError::InvalidParameter {
                name: "shards",
                message: format!("must be in 1..={MAX_SHARDS}, got {shards}"),
            });
        }
        if batch_size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "batch_size",
                message: "must be positive".to_string(),
            });
        }
        let mut stream = Self {
            config,
            batch_size,
            dim: None,
            senders: Vec::with_capacity(shards),
            workers: Vec::with_capacity(shards),
            pending: vec![Vec::new(); shards],
            next_shard: 0,
            points_seen: 0,
            rng: ChaCha20Rng::seed_from_u64(seed),
            last_stats: None,
            publish: Arc::new(PublishSlot::new()),
        };
        for shard in 0..shards {
            let clusterer = factory(shard, shard_seed(seed, shard))?;
            stream.spawn_worker(shard, clusterer)?;
        }
        Ok(stream)
    }

    /// Spawns the worker thread for `shard`, moving `clusterer` onto it.
    fn spawn_worker(&mut self, shard: usize, clusterer: C) -> Result<()> {
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name(format!("skm-shard-{shard}"))
            .spawn(move || shard_worker(clusterer, &rx))
            .map_err(|e| ClusteringError::InvalidParameter {
                name: "shards",
                message: format!("cannot spawn worker thread {shard}: {e}"),
            })?;
        self.senders.push(tx);
        self.workers.push(handle);
        Ok(())
    }

    /// Number of shards (worker threads).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Points buffered per shard before a batch is shipped.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The configuration shared by every shard.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// A handle to the publish slot this stream republishes its query
    /// answers into. Clone it onto reader threads: they can serve cached
    /// answers ([`PublishSlot::load`]) while this thread keeps ingesting —
    /// no shared lock on the stream itself.
    #[must_use]
    pub fn publish_slot(&self) -> Arc<PublishSlot> {
        Arc::clone(&self.publish)
    }

    /// The most recently published query answer, if any (shorthand for
    /// `publish_slot().load()`).
    #[must_use]
    pub fn published(&self) -> Option<Arc<PublishedClustering>> {
        self.publish.load()
    }

    /// Points currently sitting in the coordinator's per-shard batch
    /// buffers (not yet shipped to any worker).
    #[must_use]
    pub fn coordinator_buffered_points(&self) -> usize {
        match self.dim {
            Some(d) => self.pending.iter().map(|p| p.len() / d).sum(),
            None => 0,
        }
    }

    /// Ships shard `s`'s pending batch, if any.
    fn flush_shard(&mut self, shard: usize) -> Result<()> {
        // No dimension means no point was ever buffered: nothing to ship.
        let Some(dim) = self.dim else {
            return Ok(());
        };
        let Some(pending) = self.pending.get_mut(shard) else {
            return Ok(());
        };
        if pending.is_empty() {
            return Ok(());
        }
        // Keep a same-sized allocation in place so steady-state ingestion
        // reuses buffers instead of growing fresh ones from zero.
        let coords = std::mem::replace(pending, Vec::with_capacity(self.batch_size * dim));
        self.senders
            .get(shard)
            .ok_or_else(|| shard_disconnected(shard))?
            .send(ShardCmd::Batch { dim, coords })
            .map_err(|_| shard_disconnected(shard))
    }

    /// Ships every pending batch and waits until all workers have caught
    /// up (a full barrier across shards). Useful to bound ingestion work
    /// before measuring, and before dropping the stream on a schedule.
    ///
    /// # Errors
    /// Returns an error when a worker thread is gone.
    pub fn drain(&mut self) -> Result<()> {
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        // One Stats round-trip per shard: the reply arrives only after the
        // worker has processed everything queued before it.
        let mut replies = Vec::with_capacity(self.shards());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::Stats { reply: tx })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push(rx);
        }
        for (shard, rx) in replies.into_iter().enumerate() {
            rx.recv().map_err(|_| shard_disconnected(shard))?;
        }
        Ok(())
    }

    /// Runs a strict query — drain in-flight batches, collect and union the
    /// per-shard candidate coresets, extract centers with k-means++ — then
    /// republishes the complete answer through the [`PublishSlot`] and
    /// returns the freshly published value.
    ///
    /// This is what [`StreamingClusterer::query`] delegates to; use it
    /// directly when you also want the epoch, cost estimate and
    /// diagnostics without a second lookup.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point and
    /// propagates lost-worker failures.
    pub fn query_published(&mut self) -> Result<Arc<PublishedClustering>> {
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        // Ship partial batches, then enqueue one query per shard *before*
        // collecting any reply: every worker computes its candidates
        // concurrently, and channel FIFO guarantees each answer reflects
        // all points routed to that shard so far.
        let mut replies = Vec::with_capacity(self.shards());
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::Query { reply: tx })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push(rx);
        }
        // Collect in shard order so the merged candidate block — and with
        // it the k-means++ extraction — is deterministic.
        let mut blocks = Vec::with_capacity(self.shards());
        let mut merged = 0usize;
        let mut level: Option<u32> = None;
        let mut used_cache = false;
        for (shard, rx) in replies.into_iter().enumerate() {
            let response = rx.recv().map_err(|_| shard_disconnected(shard))?;
            if let Some((block, stats)) = response? {
                merged += stats.coresets_merged;
                level = level.max(stats.coreset_level);
                used_cache |= stats.used_cache;
                blocks.push(block);
            }
        }
        let candidates = union_blocks(&blocks)?;
        let stats = QueryStats {
            coresets_merged: merged,
            candidate_points: candidates.len(),
            coreset_level: level,
            used_cache,
            ran_kmeans: true,
        };
        let result = extract_clustering_result(
            &candidates,
            stats,
            self.points_seen,
            &self.config,
            &mut self.rng,
        )?;
        self.last_stats = Some(result.stats);
        Ok(self.publish.publish(result))
    }

    /// How many of the most recent `last_points` arrivals were routed to
    /// each shard. Points are routed round-robin by arrival index, so the
    /// window splits into `last_points / shards` per shard plus one extra
    /// for the `last_points % shards` shards that received the most recent
    /// arrivals (walking backwards from the next-arrival cursor).
    fn window_points_per_shard(&self, last_points: u64) -> Vec<u64> {
        let shards = self.shards();
        let mut counts = vec![last_points / shards as u64; shards];
        let rem = (last_points % shards as u64) as usize;
        for back in 1..=rem {
            // lint:allow(panic-freedom) index is reduced mod `shards` == counts.len()
            counts[(self.next_shard + shards - back) % shards] += 1;
        }
        counts
    }

    /// Runs a strict *windowed* query over the most recent `last_points`
    /// stream points: the window is split across shards by the round-robin
    /// arrival arithmetic, each involved shard contributes the summary
    /// suffix covering its slice, and the union feeds the same k-means++
    /// extraction as [`query_published`](ShardedStream::query_published).
    /// The published answer carries a [`crate::publish::WindowInfo`] with the exact
    /// (bucket-granular) coverage summed across shards.
    ///
    /// Windows of `points_seen` or more are normalized to the ordinary
    /// whole-stream query — same answer bytes, same RNG trajectory, and a
    /// `window`-free published value.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point,
    /// `InvalidParameter { name: "window" }` for `last_points == 0`, and
    /// propagates lost-worker failures.
    pub fn query_window_published(&mut self, last_points: u64) -> Result<Arc<PublishedClustering>> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.points_seen == 0 {
            return Err(ClusteringError::EmptyInput);
        }
        if last_points >= self.points_seen {
            return self.query_published();
        }
        let counts = self.window_points_per_shard(last_points);
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        let mut replies = Vec::with_capacity(self.shards());
        for ((shard, sender), &count) in self.senders.iter().enumerate().zip(&counts) {
            if count == 0 {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::WindowQuery {
                    last_points: count,
                    reply: tx,
                })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push((shard, rx));
        }
        // Collect in shard order for a deterministic merged block.
        let mut blocks = Vec::with_capacity(replies.len());
        let mut merged = 0usize;
        let mut level: Option<u32> = None;
        let mut used_cache = false;
        let mut covered = 0u64;
        for (shard, rx) in replies {
            let response = rx.recv().map_err(|_| shard_disconnected(shard))?;
            if let Some((block, stats, shard_covered)) = response? {
                merged += stats.coresets_merged;
                level = level.max(stats.coreset_level);
                used_cache |= stats.used_cache;
                covered += shard_covered;
                blocks.push(block);
            }
        }
        let candidates = union_blocks(&blocks)?;
        let stats = QueryStats {
            coresets_merged: merged,
            candidate_points: candidates.len(),
            coreset_level: level,
            used_cache,
            ran_kmeans: true,
        };
        let mut result = extract_clustering_result(
            &candidates,
            stats,
            self.points_seen,
            &self.config,
            &mut self.rng,
        )?;
        result.window = Some(crate::publish::WindowInfo {
            last_points,
            covered_points: covered,
        });
        self.last_stats = Some(result.stats);
        Ok(self.publish.publish(result))
    }

    /// The coverage [`query_window_published`] would report for this
    /// window, summed across shards, without running any query: pure span
    /// arithmetic in each worker, no merge, no RNG, no cache traffic.
    /// Windowed stats rely on this staying exactly as side-effect-free as
    /// plain stats. Windows of `points_seen` or more cover the whole
    /// stream.
    ///
    /// # Errors
    /// Returns `InvalidParameter { name: "window" }` for `last_points == 0`
    /// and lost-worker failures; `Ok(0)` before the first point.
    ///
    /// [`query_window_published`]: ShardedStream::query_window_published
    pub fn window_coverage(&mut self, last_points: u64) -> Result<u64> {
        crate::clusterer::validate_window_points(last_points)?;
        if self.points_seen == 0 {
            return Ok(0);
        }
        if last_points >= self.points_seen {
            return Ok(self.points_seen);
        }
        let counts = self.window_points_per_shard(last_points);
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        let mut replies = Vec::with_capacity(self.shards());
        for ((shard, sender), &count) in self.senders.iter().enumerate().zip(&counts) {
            if count == 0 {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::WindowCoverage {
                    last_points: count,
                    reply: tx,
                })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push((shard, rx));
        }
        let mut covered = 0u64;
        for (shard, rx) in replies {
            covered += rx.recv().map_err(|_| shard_disconnected(shard))?;
        }
        Ok(covered)
    }

    /// Aggregated per-shard statistics: total and per-shard point counts
    /// plus the most recent query's diagnostics.
    ///
    /// Buffered points are flushed to their workers first, so the per-shard
    /// counts always sum to [`StreamingClusterer::points_seen`] (the call
    /// doubles as a drain barrier, like [`ShardedStream::drain`]).
    ///
    /// # Errors
    /// Returns an error when a worker thread is gone.
    pub fn stats(&mut self) -> Result<StreamStats> {
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        let mut replies = Vec::with_capacity(self.shards());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::Stats { reply: tx })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push(rx);
        }
        let mut per_shard_points = Vec::with_capacity(self.shards());
        for (shard, rx) in replies.into_iter().enumerate() {
            let (_, seen) = rx.recv().map_err(|_| shard_disconnected(shard))?;
            per_shard_points.push(seen);
        }
        Ok(StreamStats {
            points_seen: self.points_seen,
            shards: self.shards(),
            per_shard_points,
            last_query: self.last_stats,
        })
    }
}

impl<C: ShardClusterer + Serialize> ShardedStream<C> {
    /// Captures the complete stream state for persistence.
    ///
    /// Buffered points are flushed to their workers first (batch boundaries
    /// do not affect clusterer state, so this is behaviour-preserving), then
    /// every worker ships a clone of its clusterer back to the coordinator.
    /// Workers keep running: a snapshot does not stop ingestion, and the
    /// stream continues exactly as if the snapshot had never been taken.
    ///
    /// # Errors
    /// Returns an error when a worker thread is gone or has latched an
    /// ingestion failure (a poisoned shard must not be persisted silently).
    pub fn snapshot(&mut self) -> Result<ShardedStreamState> {
        for shard in 0..self.shards() {
            self.flush_shard(shard)?;
        }
        let mut replies = Vec::with_capacity(self.shards());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            sender
                .send(ShardCmd::Snapshot { reply: tx })
                .map_err(|_| shard_disconnected(shard))?;
            replies.push(rx);
        }
        let mut shards = Vec::with_capacity(self.shards());
        for (shard, rx) in replies.into_iter().enumerate() {
            let clusterer = rx.recv().map_err(|_| shard_disconnected(shard))??;
            shards.push(clusterer.to_value());
        }
        Ok(ShardedStreamState {
            config: self.config,
            batch_size: self.batch_size,
            dim: self.dim,
            next_shard: self.next_shard,
            points_seen: self.points_seen,
            rng: self.rng.clone(),
            last_stats: self.last_stats,
            published: self.published().map(|p| p.as_ref().clone()),
            shards,
        })
    }
}

impl<C: ShardClusterer + Deserialize> ShardedStream<C> {
    /// Reconstructs a sharded stream from a [`ShardedStreamState`], spawning
    /// one worker per serialized shard. Continuing the restored stream is
    /// bit-identical to continuing the stream the snapshot was taken from.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] when the state is
    /// internally inconsistent (bad shard count, cursor out of range,
    /// malformed per-shard payload) and propagates configuration errors.
    pub fn restore(state: &ShardedStreamState) -> Result<Self> {
        state.config.validate()?;
        let shards = state.shards.len();
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ClusteringError::InvalidParameter {
                name: "snapshot",
                message: format!("shard count must be in 1..={MAX_SHARDS}, got {shards}"),
            });
        }
        if state.batch_size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "snapshot",
                message: "batch_size must be positive".to_string(),
            });
        }
        if state.next_shard >= shards {
            return Err(ClusteringError::InvalidParameter {
                name: "snapshot",
                message: format!(
                    "next_shard {} out of range for {shards} shards",
                    state.next_shard
                ),
            });
        }
        let mut stream = Self {
            config: state.config,
            batch_size: state.batch_size,
            dim: state.dim,
            senders: Vec::with_capacity(shards),
            workers: Vec::with_capacity(shards),
            pending: vec![Vec::new(); shards],
            next_shard: state.next_shard,
            points_seen: state.points_seen,
            rng: state.rng.clone(),
            last_stats: state.last_stats,
            publish: Arc::new(PublishSlot::new()),
        };
        // Republish the snapshot-time answer so readers of the restored
        // stream continue from the saved epoch, not from an empty slot.
        stream.publish.restore(state.published.clone());
        for (shard, value) in state.shards.iter().enumerate() {
            let clusterer = C::from_value(value).map_err(snapshot_error)?;
            stream.spawn_worker(shard, clusterer)?;
        }
        Ok(stream)
    }
}

impl ShardedStream<CachedCoresetTree> {
    /// Sharded ingestion over per-shard CC clusterers (the recommended
    /// default: cheap updates *and* cached queries on every shard).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn cc(config: StreamConfig, shards: usize, batch_size: usize, seed: u64) -> Result<Self> {
        Self::with_factory(config, shards, batch_size, seed, |_, s| {
            CachedCoresetTree::new(config, s)
        })
    }
}

impl ShardedStream<CoresetTreeClusterer> {
    /// Sharded ingestion over per-shard CT (streamkm++) clusterers.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn ct(config: StreamConfig, shards: usize, batch_size: usize, seed: u64) -> Result<Self> {
        Self::with_factory(config, shards, batch_size, seed, |_, s| {
            CoresetTreeClusterer::new(config, s)
        })
    }
}

impl ShardedStream<RecursiveCachedTree> {
    /// Sharded ingestion over per-shard RCC clusterers with the given
    /// nesting depth.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn rcc(
        config: StreamConfig,
        shards: usize,
        batch_size: usize,
        nesting_depth: u32,
        seed: u64,
    ) -> Result<Self> {
        Self::with_factory(config, shards, batch_size, seed, |_, s| {
            RecursiveCachedTree::new(config, nesting_depth, s)
        })
    }
}

impl<C: ShardClusterer> StreamingClusterer for ShardedStream<C> {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn update(&mut self, point: &[f64]) -> Result<()> {
        // Validate on the ingestion thread so the caller learns about a bad
        // point synchronously (workers then never see invalid input, which
        // keeps their latched-error path for genuine internal failures).
        // The shared helper commits the learned dimension only on success.
        self.dim = Some(crate::driver::validate_stream_point(self.dim, point, 0)?);

        let shard = self.next_shard;
        self.next_shard = (shard + 1) % self.shards();
        let Some(pending) = self.pending.get_mut(shard) else {
            // `shard < self.shards() == self.pending.len()` by the modulo
            // above; refuse the point rather than lose it silently.
            return Err(shard_disconnected(shard));
        };
        pending.extend_from_slice(point);
        self.points_seen += 1;
        if pending.len() >= self.batch_size * point.len() {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Centers> {
        Ok(self.query_published()?.centers.clone())
    }

    fn query_clustering(&mut self) -> Result<ClusteringResult> {
        let published = self.query_published()?;
        Ok(ClusteringResult {
            centers: published.centers.clone(),
            cost: published.cost,
            points_seen: published.points_seen,
            stats: published.stats,
            window: published.window,
        })
    }

    fn query_window_clustering(&mut self, last_points: u64) -> Result<ClusteringResult> {
        let published = self.query_window_published(last_points)?;
        Ok(ClusteringResult {
            centers: published.centers.clone(),
            cost: published.cost,
            points_seen: published.points_seen,
            stats: published.stats,
            window: published.window,
        })
    }

    fn memory_points(&self) -> usize {
        let mut total = self.coordinator_buffered_points();
        for sender in &self.senders {
            let (tx, rx) = mpsc::channel();
            if sender.send(ShardCmd::Stats { reply: tx }).is_ok() {
                if let Ok((memory, _)) = rx.recv() {
                    total += memory;
                }
            }
        }
        total
    }

    fn points_seen(&self) -> u64 {
        self.points_seen
    }

    fn dim(&self) -> Option<usize> {
        self.dim
    }

    fn last_query_stats(&self) -> Option<QueryStats> {
        self.last_stats
    }
}

impl<C: ShardClusterer> Drop for ShardedStream<C> {
    fn drop(&mut self) {
        // Hang up the command channels; each worker's `recv` then errors
        // and its loop exits. Joining keeps worker lifetime bounded by the
        // coordinator's (no detached threads outliving the stream).
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    fn config(k: usize, m: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(m)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2)
    }

    fn blob(i: usize, rng: &mut ChaCha8Rng) -> [f64; 2] {
        let anchors = [[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]];
        let a = anchors[i % anchors.len()];
        [a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()]
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ShardedStream::cc(config(2, 20), 0, 64, 1).is_err());
        assert!(ShardedStream::cc(config(2, 20), MAX_SHARDS + 1, 64, 1).is_err());
        assert!(ShardedStream::cc(config(2, 20), 2, 0, 1).is_err());
        assert!(ShardedStream::cc(StreamConfig::new(5).with_bucket_size(2), 2, 64, 1).is_err());
    }

    #[test]
    fn query_before_any_point_is_error() {
        let mut s = ShardedStream::cc(config(2, 20), 2, 16, 1).unwrap();
        assert!(s.query().is_err());
    }

    #[test]
    fn validates_points_at_ingestion() {
        let mut s = ShardedStream::cc(config(2, 20), 2, 16, 1).unwrap();
        assert!(s.update(&[]).is_err());
        s.update(&[1.0, 2.0]).unwrap();
        assert!(s.update(&[1.0]).is_err());
        assert!(s.update(&[f64::NAN, 0.0]).is_err());
        assert_eq!(s.points_seen(), 1);
    }

    #[test]
    fn rejected_first_point_does_not_lock_the_stream_dimension() {
        let mut s = ShardedStream::cc(config(2, 20), 2, 16, 1).unwrap();
        assert!(s.update(&[f64::NAN, 0.0]).is_err());
        // The rejected 2-d point must not have fixed the dimension.
        s.update(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.points_seen(), 1);
        assert!(s.update(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn round_robin_splits_points_evenly() {
        let mut s = ShardedStream::cc(config(2, 10), 3, 4, 7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for i in 0..91 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        assert_eq!(s.points_seen(), 91);
        // 91 points over 3 shards: shard 0 gets 31, shards 1-2 get 30 —
        // reported by the public stats aggregation (which flushes first, so
        // it doubles as the drain barrier).
        let stats = s.stats().unwrap();
        assert_eq!(s.coordinator_buffered_points(), 0);
        assert_eq!(stats.points_seen, 91);
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.per_shard_points, vec![31, 30, 30]);
        assert_eq!(stats.last_query, None);
    }

    #[test]
    fn stats_counts_sum_to_points_seen_and_track_queries() {
        let mut s = ShardedStream::cc(config(2, 10), 2, 8, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for i in 0..137 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        s.query().unwrap();
        let stats = s.stats().unwrap();
        assert_eq!(stats.per_shard_points.iter().sum::<u64>(), 137);
        assert_eq!(stats.points_seen, s.points_seen());
        let q = stats.last_query.expect("query already ran");
        assert!(q.ran_kmeans);
        assert_eq!(stats.last_query, s.last_query_stats());
    }

    #[test]
    fn snapshot_restore_continue_is_bit_identical() {
        let total = 700usize;
        let cut = 337usize;
        let mk = || ShardedStream::cc(config(3, 20), 3, 16, 55).unwrap();
        let points: Vec<[f64; 2]> = {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            (0..total).map(|i| blob(i, &mut rng)).collect()
        };

        // Uninterrupted reference run.
        let mut reference = mk();
        for p in &points {
            reference.update(p).unwrap();
        }
        let expected = reference.query().unwrap();

        // Snapshot mid-stream, serialize through JSON, restore, continue.
        let mut first = mk();
        for p in &points[..cut] {
            first.update(p).unwrap();
        }
        let state = first.snapshot().unwrap();
        // Snapshots are non-destructive: the source keeps working...
        let json = serde_json::to_string(&state).unwrap();
        drop(first);
        let restored: ShardedStreamState = serde_json::from_str(&json).unwrap();
        let mut resumed = ShardedStream::<CachedCoresetTree>::restore(&restored).unwrap();
        assert_eq!(resumed.points_seen(), cut as u64);
        for p in &points[cut..] {
            resumed.update(p).unwrap();
        }
        assert_eq!(resumed.query().unwrap(), expected);
    }

    #[test]
    fn queries_publish_epochs_and_snapshots_carry_them() {
        let mut s = ShardedStream::cc(config(2, 10), 2, 8, 33).unwrap();
        let slot = s.publish_slot();
        assert!(s.published().is_none());
        assert_eq!(slot.epoch(), 0);

        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for i in 0..120 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        let centers = s.query().unwrap();
        let published = s.published().expect("query published");
        assert_eq!(published.epoch, 1);
        assert_eq!(published.centers, centers);
        assert_eq!(published.points_seen, 120);
        assert!(published.cost.is_finite() && published.cost >= 0.0);
        assert_eq!(Some(published.stats), s.last_query_stats());
        // The externally held slot handle sees the same value.
        assert_eq!(slot.load().unwrap().epoch, 1);

        // Snapshots carry the published answer; restore republishes it and
        // the epoch sequence continues.
        let state = s.snapshot().unwrap();
        assert_eq!(state.published.as_ref().unwrap().epoch, 1);
        let restored = ShardedStream::<CachedCoresetTree>::restore(&state).unwrap();
        assert_eq!(restored.published().unwrap().as_ref(), published.as_ref());
        let mut restored = restored;
        restored.query().unwrap();
        assert_eq!(restored.published().unwrap().epoch, 2);
    }

    #[test]
    fn snapshot_does_not_perturb_the_source_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let points: Vec<[f64; 2]> = (0..500).map(|i| blob(i, &mut rng)).collect();
        let run = |snapshot_at: Option<usize>| {
            let mut s = ShardedStream::cc(config(2, 15), 2, 8, 21).unwrap();
            for (i, p) in points.iter().enumerate() {
                s.update(p).unwrap();
                if snapshot_at == Some(i) {
                    s.snapshot().unwrap();
                }
            }
            s.query().unwrap()
        };
        assert_eq!(run(Some(250)), run(None));
    }

    #[test]
    fn restore_rejects_inconsistent_states() {
        let mut s = ShardedStream::cc(config(2, 10), 2, 8, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for i in 0..40 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        let good = s.snapshot().unwrap();

        let mut no_shards = good.clone();
        no_shards.shards.clear();
        assert!(ShardedStream::<CachedCoresetTree>::restore(&no_shards).is_err());

        let mut bad_cursor = good.clone();
        bad_cursor.next_shard = 99;
        assert!(ShardedStream::<CachedCoresetTree>::restore(&bad_cursor).is_err());

        let mut bad_batch = good.clone();
        bad_batch.batch_size = 0;
        assert!(ShardedStream::<CachedCoresetTree>::restore(&bad_batch).is_err());

        let mut bad_payload = good;
        bad_payload.shards[0] = serde::Value::Str("not a clusterer".to_string());
        assert!(ShardedStream::<CachedCoresetTree>::restore(&bad_payload).is_err());
    }

    #[test]
    fn finds_clusters_and_reports_stats() {
        let mut s = ShardedStream::cc(config(3, 30), 4, 32, 11).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for i in 0..1_800 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        let centers = s.query().unwrap();
        assert_eq!(centers.len(), 3);
        for anchor in [[0.5, 0.5], [40.5, 0.5], [0.5, 40.5]] {
            let closest = centers
                .iter()
                .map(|c| skm_clustering::distance::distance(c, &anchor))
                .fold(f64::INFINITY, f64::min);
            assert!(closest < 2.0, "anchor {anchor:?} missed ({closest})");
        }
        let stats = s.last_query_stats().unwrap();
        assert!(stats.ran_kmeans);
        assert!(stats.candidate_points > 0);
        assert!(stats.coresets_merged >= 4, "one candidate set per shard");
    }

    #[test]
    fn deterministic_at_fixed_seed_and_shard_count() {
        let run = || {
            let mut s = ShardedStream::cc(config(3, 20), 3, 8, 99).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut mid = None;
            for i in 0..700 {
                s.update(&blob(i, &mut rng)).unwrap();
                if i == 350 {
                    mid = Some(s.query().unwrap());
                }
            }
            (mid.unwrap(), s.query().unwrap())
        };
        let (a_mid, a_end) = run();
        let (b_mid, b_end) = run();
        // Bit-identical, not approximately equal.
        assert_eq!(a_mid, b_mid);
        assert_eq!(a_end, b_end);
    }

    #[test]
    fn single_shard_batches_do_not_change_points_seen_accounting() {
        let mut s = ShardedStream::ct(config(2, 10), 1, 4, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 0..25 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        assert_eq!(s.points_seen(), 25);
        s.drain().unwrap();
        // All 25 points are inside the worker now (tree + partial bucket).
        assert!(s.memory_points() >= 5);
        assert_eq!(s.coordinator_buffered_points(), 0);
    }

    #[test]
    fn rcc_sharding_works_end_to_end() {
        let mut s = ShardedStream::rcc(config(2, 16), 2, 16, 2, 5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for i in 0..400 {
            s.update(&blob(i, &mut rng)).unwrap();
        }
        let centers = s.query().unwrap();
        assert_eq!(centers.len(), 2);
        assert_eq!(s.name(), "Sharded");
        assert_eq!(s.shards(), 2);
        assert_eq!(s.batch_size(), 16);
    }
}
