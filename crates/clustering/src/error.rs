//! Error types shared by the clustering substrate.

use std::fmt;

/// Errors produced by the clustering substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusteringError {
    /// An operation that requires at least one point was given an empty set.
    EmptyInput,
    /// A point with the wrong dimensionality was supplied.
    DimensionMismatch {
        /// Dimension the container was created with.
        expected: usize,
        /// Dimension of the offending point.
        got: usize,
    },
    /// `k` (number of clusters) must be at least 1.
    InvalidK {
        /// The offending value.
        k: usize,
    },
    /// A weight was negative, NaN or infinite.
    InvalidWeight {
        /// Index of the offending point within its container.
        index: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending point within its container.
        index: usize,
    },
    /// A configuration parameter was out of its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human readable description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::EmptyInput => write!(f, "input point set is empty"),
            ClusteringError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            ClusteringError::InvalidK { k } => write!(f, "invalid number of clusters k = {k}"),
            ClusteringError::InvalidWeight { index } => {
                write!(
                    f,
                    "point {index} has an invalid (negative or non-finite) weight"
                )
            }
            ClusteringError::NonFiniteCoordinate { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
            ClusteringError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for ClusteringError {}

/// Convenience result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ClusteringError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ClusteringError::DimensionMismatch {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 5"));

        let e = ClusteringError::InvalidK { k: 0 };
        assert!(e.to_string().contains("k = 0"));

        let e = ClusteringError::InvalidParameter {
            name: "alpha",
            message: "must be > 1".to_string(),
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("must be > 1"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ClusteringError::EmptyInput, ClusteringError::EmptyInput);
        assert_ne!(
            ClusteringError::EmptyInput,
            ClusteringError::InvalidK { k: 2 }
        );
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ClusteringError::EmptyInput);
        assert_eq!(e.to_string(), "input point set is empty");
    }
}
