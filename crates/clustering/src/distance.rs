//! Squared-Euclidean distance kernels and nearest-center search.
//!
//! The paper defines `D(x, y) = ‖x − y‖` and `D(x, Ψ) = min_{ψ∈Ψ} ‖x − ψ‖`.
//! Every algorithm in the reproduction spends most of its time in these
//! kernels, so they are kept small, branch-free where possible and
//! `#[inline]`.

use crate::centers::Centers;

/// Squared Euclidean distance `‖a − b‖²` between two points.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[must_use]
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in squared_distance");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance `‖a − b‖`.
#[must_use]
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Index of the nearest center to `point` and the squared distance to it.
///
/// Returns `None` when `centers` is empty.
#[must_use]
pub fn nearest_center(point: &[f64], centers: &Centers) -> Option<(usize, f64)> {
    if centers.is_empty() {
        return None;
    }
    let mut best_idx = 0;
    let mut best = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best {
            best = d;
            best_idx = i;
        }
    }
    Some((best_idx, best))
}

/// Squared distance from `point` to the nearest of `centers`
/// (`D²(x, Ψ)`), or `+∞` when `centers` is empty.
#[must_use]
pub fn squared_distance_to_set(point: &[f64], centers: &Centers) -> f64 {
    nearest_center(point, centers).map_or(f64::INFINITY, |(_, d)| d)
}

/// Like [`nearest_center`], but searching a plain list of candidate rows in
/// flat row-major storage. Used by the coreset constructors which sample
/// representatives before they are wrapped in a [`Centers`] value.
///
/// Returns `None` if `rows` is empty or `dim == 0`.
#[must_use]
pub fn nearest_row(point: &[f64], rows: &[f64], dim: usize) -> Option<(usize, f64)> {
    if rows.is_empty() || dim == 0 {
        return None;
    }
    let mut best_idx = 0;
    let mut best = f64::INFINITY;
    for (i, c) in rows.chunks_exact(dim).enumerate() {
        let d = squared_distance(point, c);
        if d < best {
            best = d;
            best_idx = i;
        }
    }
    Some((best_idx, best))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn distance_is_sqrt_of_squared() {
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_picks_minimum() {
        let centers =
            Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let (idx, d) = nearest_center(&[0.0, 2.0], &centers).unwrap();
        assert_eq!(idx, 2);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_of_empty_set_is_none() {
        let centers = Centers::new(2);
        assert!(nearest_center(&[0.0, 0.0], &centers).is_none());
        assert!(squared_distance_to_set(&[0.0, 0.0], &centers).is_infinite());
    }

    #[test]
    fn nearest_row_matches_nearest_center() {
        let rows = vec![0.0, 0.0, 10.0, 0.0, 0.0, 3.0];
        let centers =
            Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let p = [7.0, 1.0];
        let a = nearest_row(&p, &rows, 2).unwrap();
        let b = nearest_center(&p, &centers).unwrap();
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn nearest_row_empty_is_none() {
        assert!(nearest_row(&[1.0], &[], 1).is_none());
    }

    #[test]
    fn ties_resolve_to_first_center() {
        let centers = Centers::from_rows(1, &[vec![1.0], vec![-1.0]]).unwrap();
        let (idx, _) = nearest_center(&[0.0], &centers).unwrap();
        assert_eq!(idx, 0);
    }
}
