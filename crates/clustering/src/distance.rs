//! Squared-Euclidean distance kernels and nearest-center search.
//!
//! The paper defines `D(x, y) = ‖x − y‖` and `D(x, Ψ) = min_{ψ∈Ψ} ‖x − ψ‖`.
//! Every algorithm in the reproduction spends most of its time in these
//! kernels, so they are kept small, branch-free where possible and
//! `#[inline]`.
//!
//! Two families of kernels live here:
//!
//! * the **legacy per-point path** ([`squared_distance`], [`nearest_center`])
//!   which computes `Σ (x_j − c_j)²` directly, and
//! * the **fused path** ([`sq_dist_block`], [`nearest_block_row`]) which
//!   expands `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²` so that cached norms (see
//!   [`crate::block::PointBlock`]) turn each distance into a single dot
//!   product. The dot product is accumulated in four independent lanes so the
//!   compiler can keep several multiply-adds in flight per cycle.
//!
//! Every distance-heavy inner loop in the workspace (k-means++ seeding, cost
//! evaluation, Lloyd iterations, coreset construction) routes through the
//! fused path; the legacy path is retained for tests and one-off distances.

use crate::centers::Centers;

/// Squared Euclidean distance `‖a − b‖²` between two points.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[must_use]
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in squared_distance");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance `‖a − b‖`.
#[must_use]
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Index of the nearest center to `point` and the squared distance to it.
///
/// Returns `None` when `centers` is empty.
#[must_use]
pub fn nearest_center(point: &[f64], centers: &Centers) -> Option<(usize, f64)> {
    if centers.is_empty() {
        return None;
    }
    let mut best_idx = 0;
    let mut best = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best {
            best = d;
            best_idx = i;
        }
    }
    Some((best_idx, best))
}

/// Squared distance from `point` to the nearest of `centers`
/// (`D²(x, Ψ)`), or `+∞` when `centers` is empty.
#[must_use]
pub fn squared_distance_to_set(point: &[f64], centers: &Centers) -> f64 {
    nearest_center(point, centers).map_or(f64::INFINITY, |(_, d)| d)
}

/// Like [`nearest_center`], but searching a plain list of candidate rows in
/// flat row-major storage. Used by the coreset constructors which sample
/// representatives before they are wrapped in a [`Centers`] value.
///
/// Returns `None` if `rows` is empty or `dim == 0`.
#[must_use]
pub fn nearest_row(point: &[f64], rows: &[f64], dim: usize) -> Option<(usize, f64)> {
    if rows.is_empty() || dim == 0 {
        return None;
    }
    let mut best_idx = 0;
    let mut best = f64::INFINITY;
    for (i, c) in rows.chunks_exact(dim).enumerate() {
        let d = squared_distance(point, c);
        if d < best {
            best = d;
            best_idx = i;
        }
    }
    Some((best_idx, best))
}

/// Dot product `a · b`, accumulated in four independent lanes.
///
/// The four partial sums have no dependency on one another, so the loop can
/// sustain multiple fused multiply-adds per cycle on modern hardware; the
/// reassociation changes the rounding of the result by at most a few ULP
/// relative to a sequential sum.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[must_use]
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in dot");
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Squared Euclidean norm `‖a‖² = a · a`.
#[must_use]
#[inline]
pub fn squared_norm(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Squared norms of every `dim`-length row of `coords`, in row order.
///
/// This is the one-time `O(nd)` pass that makes every subsequent fused
/// distance an `O(d)` dot product; [`crate::block::PointBlock`] caches the
/// result so repeated passes (k-means++ rounds, Lloyd iterations, repeated
/// k-means runs) never recompute it.
#[must_use]
pub fn squared_norms(coords: &[f64], dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dimension must be positive");
    coords.chunks_exact(dim).map(squared_norm).collect()
}

/// Fused squared Euclidean distance `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²` using
/// precomputed norms.
///
/// The result is clamped at zero: catastrophic cancellation can otherwise
/// produce a tiny negative value when `x ≈ c`.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[must_use]
#[inline]
pub fn sq_dist_block(x: &[f64], x_norm: f64, c: &[f64], c_norm: f64) -> f64 {
    (x_norm - 2.0 * dot(x, c) + c_norm).max(0.0)
}

/// Fused nearest-row search over flat row-major `rows` with precomputed
/// `row_norms`: returns the index of the row minimizing `‖x − row‖²` and
/// that squared distance.
///
/// Internally compares the partial score `‖row‖² − 2·x·row` (monotone in the
/// squared distance for a fixed `x`), adding `‖x‖²` back only once at the
/// end. Ties resolve to the first row, matching [`nearest_center`].
///
/// Returns `None` if `rows` is empty or `dim == 0`.
///
/// # Panics
/// Panics (debug builds) when `row_norms` does not have one entry per row.
#[must_use]
pub fn nearest_block_row(
    x: &[f64],
    x_norm: f64,
    rows: &[f64],
    row_norms: &[f64],
    dim: usize,
) -> Option<(usize, f64)> {
    if rows.is_empty() || dim == 0 {
        return None;
    }
    debug_assert_eq!(rows.len(), row_norms.len() * dim, "norm cache mismatch");
    let mut best_idx = 0;
    let mut best_score = f64::INFINITY;
    for (i, (c, &c_norm)) in rows.chunks_exact(dim).zip(row_norms).enumerate() {
        let score = c_norm - 2.0 * dot(x, c);
        if score < best_score {
            best_score = score;
            best_idx = i;
        }
    }
    Some((best_idx, (x_norm + best_score).max(0.0)))
}

/// Fused variant of [`nearest_center`]: nearest center to `x` using the
/// center coordinates and a precomputed center-norm cache (one `‖c‖²` per
/// center, typically computed once per pass over the data).
///
/// Returns `None` when `centers` is empty.
#[must_use]
#[inline]
pub fn nearest_center_block(
    x: &[f64],
    x_norm: f64,
    centers: &Centers,
    center_norms: &[f64],
) -> Option<(usize, f64)> {
    nearest_block_row(x, x_norm, centers.coords(), center_norms, centers.dim())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn distance_is_sqrt_of_squared() {
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_picks_minimum() {
        let centers =
            Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let (idx, d) = nearest_center(&[0.0, 2.0], &centers).unwrap();
        assert_eq!(idx, 2);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_of_empty_set_is_none() {
        let centers = Centers::new(2);
        assert!(nearest_center(&[0.0, 0.0], &centers).is_none());
        assert!(squared_distance_to_set(&[0.0, 0.0], &centers).is_infinite());
    }

    #[test]
    fn nearest_row_matches_nearest_center() {
        let rows = vec![0.0, 0.0, 10.0, 0.0, 0.0, 3.0];
        let centers =
            Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let p = [7.0, 1.0];
        let a = nearest_row(&p, &rows, 2).unwrap();
        let b = nearest_center(&p, &centers).unwrap();
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn nearest_row_empty_is_none() {
        assert!(nearest_row(&[1.0], &[], 1).is_none());
    }

    #[test]
    fn ties_resolve_to_first_center() {
        let centers = Centers::from_rows(1, &[vec![1.0], vec![-1.0]]).unwrap();
        let (idx, _) = nearest_center(&[0.0], &centers).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn dot_handles_all_remainder_lengths() {
        // Exercise the 4-lane kernel across every tail length 0..=3.
        for d in 1..=9usize {
            let a: Vec<f64> = (0..d).map(|i| i as f64 + 1.0).collect();
            let b: Vec<f64> = (0..d).map(|i| 2.0 * i as f64 - 3.0).collect();
            let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - expected).abs() < 1e-9, "d = {d}");
        }
    }

    #[test]
    fn squared_norms_match_per_row_norms() {
        let coords = vec![3.0, 4.0, 1.0, 0.0, -2.0, 2.0];
        let norms = squared_norms(&coords, 2);
        assert_eq!(norms, vec![25.0, 1.0, 8.0]);
    }

    #[test]
    fn fused_distance_matches_legacy() {
        let x = [1.5, -2.0, 3.0, 0.5, 7.0];
        let c = [0.0, 4.0, -1.0, 2.5, 6.0];
        let legacy = squared_distance(&x, &c);
        let fused = sq_dist_block(&x, squared_norm(&x), &c, squared_norm(&c));
        assert!((legacy - fused).abs() < 1e-9 * (1.0 + legacy));
    }

    #[test]
    fn fused_distance_clamps_cancellation_to_zero() {
        let x = [1e8, 1e8];
        let fused = sq_dist_block(&x, squared_norm(&x), &x, squared_norm(&x));
        assert_eq!(fused, 0.0);
    }

    #[test]
    fn nearest_block_row_matches_nearest_center() {
        let rows = vec![0.0, 0.0, 10.0, 0.0, 0.0, 3.0];
        let norms = squared_norms(&rows, 2);
        let centers =
            Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]]).unwrap();
        for p in [[7.0, 1.0], [0.0, 2.0], [-3.0, -3.0]] {
            let fused = nearest_block_row(&p, squared_norm(&p), &rows, &norms, 2).unwrap();
            let legacy = nearest_center(&p, &centers).unwrap();
            assert_eq!(fused.0, legacy.0, "point {p:?}");
            assert!((fused.1 - legacy.1).abs() < 1e-9 * (1.0 + legacy.1));
        }
    }

    #[test]
    fn nearest_block_row_empty_is_none() {
        assert!(nearest_block_row(&[1.0], 1.0, &[], &[], 1).is_none());
    }

    #[test]
    fn nearest_center_block_matches_plain_nearest() {
        let centers = Centers::from_rows(3, &[vec![1.0, 2.0, 3.0], vec![-4.0, 0.0, 1.0]]).unwrap();
        let norms = squared_norms(centers.coords(), 3);
        let p = [0.5, 0.5, 0.5];
        let fused = nearest_center_block(&p, squared_norm(&p), &centers, &norms).unwrap();
        let legacy = nearest_center(&p, &centers).unwrap();
        assert_eq!(fused.0, legacy.0);
        assert!((fused.1 - legacy.1).abs() < 1e-9);
    }
}
