//! Weighted point sets with flat (cache friendly) storage.
//!
//! The paper's Problem 1 (k-means clustering) is defined over a *weighted*
//! point set `P ⊆ R^d` with weight function `w : P → Z+`. Coresets are also
//! weighted point sets, so a single container serves both roles. We allow
//! real-valued weights because merged coresets carry fractional weights in
//! some constructions.

use crate::error::{ClusteringError, Result};
use serde::{Deserialize, Serialize};

/// A weighted set of points in `R^d`, stored as one flat `Vec<f64>` of
/// length `n * d` plus a weight vector of length `n`.
///
/// Flat storage keeps points contiguous in memory, which matters for the
/// distance kernels that dominate the running time of every algorithm in the
/// paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    dim: usize,
    data: Vec<f64>,
    weights: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "point dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates an empty point set of dimension `dim` with capacity for
    /// `capacity` points.
    #[must_use]
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "point dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(capacity * dim),
            weights: Vec::with_capacity(capacity),
        }
    }

    /// Builds a point set from row-major coordinates and per-point weights.
    ///
    /// # Errors
    /// Returns an error if `coords.len()` is not a multiple of `dim` or the
    /// number of weights does not match the number of points.
    pub fn from_rows(dim: usize, coords: Vec<f64>, weights: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "dim",
                message: "dimension must be positive".to_string(),
            });
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(ClusteringError::DimensionMismatch {
                expected: dim,
                got: coords.len() % dim,
            });
        }
        let n = coords.len() / dim;
        if weights.len() != n {
            return Err(ClusteringError::InvalidParameter {
                name: "weights",
                message: format!("expected {n} weights, got {}", weights.len()),
            });
        }
        for (i, w) in weights.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(ClusteringError::InvalidWeight { index: i });
            }
        }
        Ok(Self {
            dim,
            data: coords,
            weights,
        })
    }

    /// Builds a unit-weight point set from a slice of points.
    ///
    /// # Errors
    /// Returns an error if any point has the wrong dimension.
    pub fn from_points(dim: usize, points: &[Vec<f64>]) -> Result<Self> {
        let mut set = Self::with_capacity(dim, points.len());
        for p in points {
            set.try_push(p, 1.0)?;
        }
        Ok(set)
    }

    /// Dimension `d` of the points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of (weighted) points stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when the set contains no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Appends a point with the given weight.
    ///
    /// # Panics
    /// Panics if the point's dimension differs from the set's dimension.
    pub fn push(&mut self, point: &[f64], weight: f64) {
        self.try_push(point, weight)
            .expect("point dimension or weight invalid");
    }

    /// Appends a point with the given weight, reporting failures as errors.
    ///
    /// # Errors
    /// Returns an error if the dimension does not match or the weight is
    /// negative / non-finite.
    pub fn try_push(&mut self, point: &[f64], weight: f64) -> Result<()> {
        if point.len() != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(ClusteringError::InvalidWeight { index: self.len() });
        }
        self.data.extend_from_slice(point);
        self.weights.push(weight);
        Ok(())
    }

    /// Returns the coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Returns the weight of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Mutable access to the weight of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn weight_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.weights[i]
    }

    /// Sum of all weights (`Σ w(x)`).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterator over `(coordinates, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.data
            .chunks_exact(self.dim)
            .zip(self.weights.iter().copied())
    }

    /// Raw row-major coordinate storage.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.data
    }

    /// Raw weight storage.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Appends all points of `other` (dimension must match).
    ///
    /// This is the multiset union used by Observation 1 of the paper: the
    /// union of coresets of disjoint point sets.
    ///
    /// # Errors
    /// Returns an error if dimensions differ.
    pub fn extend_from(&mut self, other: &PointSet) -> Result<()> {
        if other.dim != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        self.data.extend_from_slice(&other.data);
        self.weights.extend_from_slice(&other.weights);
        Ok(())
    }

    /// Appends points given as raw parallel slices. The caller guarantees
    /// `coords.len() == weights.len() * self.dim` and valid weights; the
    /// block type upholds this by construction.
    pub(crate) fn extend_from_raw(&mut self, coords: &[f64], weights: &[f64]) {
        debug_assert_eq!(coords.len(), weights.len() * self.dim);
        self.data.extend_from_slice(coords);
        self.weights.extend_from_slice(weights);
    }

    /// Decomposes into `(dim, coords, weights)`, transferring the buffers
    /// without copying (used by the block type for owned conversions).
    pub(crate) fn into_raw(self) -> (usize, Vec<f64>, Vec<f64>) {
        (self.dim, self.data, self.weights)
    }

    /// Removes all points while keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.weights.clear();
    }

    /// Weighted centroid of the whole set, or `None` if the set is empty or
    /// has zero total weight.
    #[must_use]
    pub fn centroid(&self) -> Option<Vec<f64>> {
        let total = self.total_weight();
        if self.is_empty() || total <= 0.0 {
            return None;
        }
        let mut c = vec![0.0; self.dim];
        for (p, w) in self.iter() {
            for (ci, xi) in c.iter_mut().zip(p) {
                *ci += w * xi;
            }
        }
        for ci in &mut c {
            *ci /= total;
        }
        Some(c)
    }

    /// Axis-aligned bounding box `(min, max)` of the points, ignoring
    /// weights. Returns `None` for an empty set.
    #[must_use]
    pub fn bounding_box(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.point(0).to_vec();
        let mut hi = lo.clone();
        for (p, _) in self.iter().skip(1) {
            for j in 0..self.dim {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
        Some((lo, hi))
    }

    /// Number of bytes needed to store the coordinates of this set assuming
    /// 8 bytes per dimension per point — the accounting the paper uses for
    /// its memory figures (Table 4).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.len() * self.dim * std::mem::size_of::<f64>()
    }

    /// Splits the set into consecutive chunks of at most `chunk` points,
    /// preserving order. Used by tests and by the batch baseline.
    #[must_use]
    pub fn chunks(&self, chunk: usize) -> Vec<PointSet> {
        assert!(chunk > 0, "chunk size must be positive");
        let mut out = Vec::new();
        let mut current = PointSet::with_capacity(self.dim, chunk.min(self.len()));
        for (p, w) in self.iter() {
            current.push(p, w);
            if current.len() == chunk {
                out.push(std::mem::replace(
                    &mut current,
                    PointSet::with_capacity(self.dim, chunk),
                ));
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        out
    }

    /// Returns a copy containing only the points at the given indices.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.point(i), self.weight(i));
        }
        out
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = (&'a [f64], f64);
    type IntoIter = Box<dyn Iterator<Item = (&'a [f64], f64)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> PointSet {
        let mut s = PointSet::new(2);
        s.push(&[0.0, 0.0], 1.0);
        s.push(&[2.0, 0.0], 1.0);
        s.push(&[0.0, 2.0], 2.0);
        s
    }

    #[test]
    fn push_and_access() {
        let s = sample_set();
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.point(1), &[2.0, 0.0]);
        assert_eq!(s.weight(2), 2.0);
        assert!((s.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut s = PointSet::new(2);
        let err = s.try_push(&[1.0, 2.0, 3.0], 1.0).unwrap_err();
        assert_eq!(
            err,
            ClusteringError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn negative_weight_is_an_error() {
        let mut s = PointSet::new(2);
        let err = s.try_push(&[1.0, 2.0], -1.0).unwrap_err();
        assert_eq!(err, ClusteringError::InvalidWeight { index: 0 });
    }

    #[test]
    fn nan_weight_is_an_error() {
        let mut s = PointSet::new(1);
        assert!(s.try_push(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn from_rows_checks_shapes() {
        assert!(PointSet::from_rows(2, vec![1.0, 2.0, 3.0], vec![1.0]).is_err());
        assert!(PointSet::from_rows(2, vec![1.0, 2.0], vec![1.0, 1.0]).is_err());
        let s = PointSet::from_rows(2, vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 0.5]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_points_builds_unit_weights() {
        let s = PointSet::from_points(3, &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.weight(0), 1.0);
        assert_eq!(s.weight(1), 1.0);
    }

    #[test]
    fn centroid_is_weighted() {
        let s = sample_set();
        // centroid = (1*[0,0] + 1*[2,0] + 2*[0,2]) / 4 = [0.5, 1.0]
        let c = s.centroid().unwrap();
        assert!((c[0] - 0.5).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_set_is_none() {
        let s = PointSet::new(4);
        assert!(s.centroid().is_none());
    }

    #[test]
    fn extend_from_unions_multisets() {
        let mut a = sample_set();
        let b = sample_set();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 6);
        assert!((a.total_weight() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn extend_from_rejects_dim_mismatch() {
        let mut a = PointSet::new(2);
        let b = PointSet::new(3);
        assert!(a.extend_from(&b).is_err());
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let s = sample_set();
        let (lo, hi) = s.bounding_box().unwrap();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![2.0, 2.0]);
    }

    #[test]
    fn chunks_preserve_order_and_weights() {
        let mut s = PointSet::new(1);
        for i in 0..10 {
            s.push(&[f64::from(i)], f64::from(i) + 1.0);
        }
        let chunks = s.chunks(4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        assert_eq!(chunks[2].point(1), &[9.0]);
        assert_eq!(chunks[2].weight(1), 10.0);
    }

    #[test]
    fn select_picks_indices() {
        let s = sample_set();
        let sub = s.select(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[0.0, 2.0]);
        assert_eq!(sub.weight(0), 2.0);
        assert_eq!(sub.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn memory_bytes_counts_coordinates() {
        let s = sample_set();
        assert_eq!(s.memory_bytes(), 3 * 2 * 8);
    }

    #[test]
    fn clear_keeps_dim() {
        let mut s = sample_set();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.dim(), 2);
    }
}
