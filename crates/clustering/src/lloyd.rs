//! Weighted Lloyd's algorithm (the classic "k-means algorithm").
//!
//! The paper's evaluation (Section 5.2) follows each k-means++ seeding with
//! up to 20 iterations of Lloyd's algorithm to polish the centers. Lloyd's
//! algorithm alternates between assigning every point to its nearest center
//! and moving every center to the weighted centroid of its assigned points;
//! the cost is non-increasing across iterations.

use crate::block::{BlockView, PointBlock};
use crate::centers::Centers;
use crate::cost::assign_view;
use crate::distance::{nearest_block_row, squared_norms};
use crate::error::{ClusteringError, Result};
use crate::point::PointSet;

/// Result of running Lloyd iterations.
#[derive(Debug, Clone)]
pub struct LloydOutcome {
    /// The refined centers.
    pub centers: Centers,
    /// Weighted k-means cost of the final centers on the input.
    pub cost: f64,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Whether the algorithm stopped because the relative cost improvement
    /// fell below the tolerance (as opposed to hitting the iteration cap).
    pub converged: bool,
}

/// Configuration for [`lloyd`].
#[derive(Debug, Clone, Copy)]
pub struct LloydConfig {
    /// Maximum number of iterations (the paper uses 20).
    pub max_iterations: usize,
    /// Relative cost-improvement threshold below which iteration stops.
    pub tolerance: f64,
}

impl Default for LloydConfig {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance: 1e-6,
        }
    }
}

/// Runs weighted Lloyd iterations starting from `initial` centers.
///
/// Empty clusters are re-seeded with the point that currently contributes
/// the most to the cost, a standard remedy that keeps exactly `k` centers
/// alive.
///
/// This is a thin adapter over the fused kernel path: the point-norm cache
/// is computed once and reused by **every** iteration (and the final cost
/// evaluation), which is where the cached-norm representation pays off most.
///
/// # Errors
/// * [`ClusteringError::EmptyInput`] if `points` or `initial` is empty.
/// * Dimension mismatch between `points` and `initial`.
pub fn lloyd(points: &PointSet, initial: &Centers, config: LloydConfig) -> Result<LloydOutcome> {
    if points.is_empty() || initial.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if points.dim() != initial.dim() {
        return Err(ClusteringError::DimensionMismatch {
            expected: points.dim(),
            got: initial.dim(),
        });
    }
    let norms = squared_norms(points.coords(), points.dim());
    Ok(lloyd_view(BlockView::over(points, &norms), initial, config))
}

/// [`lloyd`] over a [`PointBlock`], reusing its cached squared norms.
///
/// # Errors
/// Same failure modes as [`lloyd`].
pub fn lloyd_block(
    block: &PointBlock,
    initial: &Centers,
    config: LloydConfig,
) -> Result<LloydOutcome> {
    if block.is_empty() || initial.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if block.dim() != initial.dim() {
        return Err(ClusteringError::DimensionMismatch {
            expected: block.dim(),
            got: initial.dim(),
        });
    }
    Ok(lloyd_view(block.view(), initial, config))
}

/// Fused-kernel core of Lloyd's algorithm. The caller has validated shapes
/// and non-emptiness.
pub(crate) fn lloyd_view(
    view: BlockView<'_>,
    initial: &Centers,
    config: LloydConfig,
) -> LloydOutcome {
    let dim = view.dim();
    let k = initial.len();
    let mut centers = initial.clone();
    let mut prev_cost = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;

        // Assignment step; also gives the cost of the *current* centers.
        // Center norms change every iteration (centers move) and are
        // recomputed once per iteration; point norms come from the cache.
        let center_norms = squared_norms(centers.coords(), dim);
        let mut sums = vec![0.0; k * dim];
        let mut masses = vec![0.0; k];
        let mut cost = 0.0;
        // Track the single worst point for empty-cluster reseeding.
        let mut worst_point = 0usize;
        let mut worst_contrib = -1.0;
        for (i, (p, w, n)) in view.iter().enumerate() {
            let (idx, d2) = nearest_block_row(p, n, centers.coords(), &center_norms, dim)
                .expect("non-empty centers");
            cost += w * d2;
            masses[idx] += w;
            let row = &mut sums[idx * dim..(idx + 1) * dim];
            for (s, x) in row.iter_mut().zip(p) {
                *s += w * x;
            }
            if w * d2 > worst_contrib {
                worst_contrib = w * d2;
                worst_point = i;
            }
        }

        // Convergence test on the cost of the centers we just evaluated.
        if prev_cost.is_finite() {
            let improvement = (prev_cost - cost) / prev_cost.max(f64::MIN_POSITIVE);
            if improvement.abs() <= config.tolerance {
                prev_cost = cost;
                converged = true;
                break;
            }
        }
        prev_cost = cost;

        // Update step: move each center to the weighted centroid of its
        // cluster; re-seed empty clusters at the current worst point.
        for j in 0..k {
            if masses[j] > 0.0 {
                let row = &sums[j * dim..(j + 1) * dim];
                let c = centers.center_mut(j);
                for (ci, s) in c.iter_mut().zip(row) {
                    *ci = s / masses[j];
                }
                *centers.weight_mut(j) = masses[j];
            } else {
                let p = view.point(worst_point);
                centers.center_mut(j).copy_from_slice(p);
                *centers.weight_mut(j) = view.weight(worst_point);
            }
        }
    }

    // Final cost of the returned centers (they may have moved after the last
    // cost evaluation above).
    let final_assignment = assign_view(view, &centers);
    let cost = final_assignment.cost.min(prev_cost);
    // Keep the cheaper of (last evaluated centers, updated centers): Lloyd
    // updates never increase cost in exact arithmetic, so this only guards
    // against floating-point noise.
    LloydOutcome {
        centers,
        cost,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kmeans_cost;
    use crate::kmeanspp::kmeanspp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_blobs() -> PointSet {
        let mut s = PointSet::new(2);
        for i in 0..25 {
            let dx = f64::from(i % 5) * 0.1;
            let dy = f64::from(i / 5) * 0.1;
            s.push(&[dx, dy], 1.0);
            s.push(&[10.0 + dx, 10.0 + dy], 1.0);
        }
        s
    }

    #[test]
    fn improves_over_bad_initialization() {
        let points = two_blobs();
        // Deliberately bad start: both centers inside the same blob.
        let init = Centers::from_rows(2, &[vec![0.0, 0.0], vec![0.4, 0.4]]).unwrap();
        let init_cost = kmeans_cost(&points, &init).unwrap();
        let out = lloyd(&points, &init, LloydConfig::default()).unwrap();
        assert!(out.cost <= init_cost);
        assert_eq!(out.centers.len(), 2);
    }

    #[test]
    fn cost_matches_reported_cost() {
        let points = two_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let init = kmeanspp(&points, 2, &mut rng).unwrap();
        let out = lloyd(&points, &init, LloydConfig::default()).unwrap();
        let recomputed = kmeans_cost(&points, &out.centers).unwrap();
        assert!((recomputed - out.cost).abs() <= 1e-9 * (1.0 + recomputed));
    }

    #[test]
    fn converges_on_separated_blobs() {
        let points = two_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let init = kmeanspp(&points, 2, &mut rng).unwrap();
        let out = lloyd(&points, &init, LloydConfig::default()).unwrap();
        // Optimal centers are the blob centroids at (0.2, 0.2)±, giving a
        // tiny within-blob cost. 25 points per blob, spread 0.4 x 0.4.
        assert!(out.cost < 10.0, "cost {}", out.cost);
        assert!(out.converged || out.iterations == LloydConfig::default().max_iterations);
    }

    #[test]
    fn single_iteration_cap_respected() {
        let points = two_blobs();
        let init = Centers::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let out = lloyd(
            &points,
            &init,
            LloydConfig {
                max_iterations: 1,
                tolerance: 0.0,
            },
        )
        .unwrap();
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn handles_weighted_points() {
        // Heavy point should pull its center strongly.
        let mut points = PointSet::new(1);
        points.push(&[0.0], 1.0);
        points.push(&[1.0], 1.0);
        points.push(&[10.0], 100.0);
        let init = Centers::from_rows(1, &[vec![0.5], vec![9.0]]).unwrap();
        let out = lloyd(&points, &init, LloydConfig::default()).unwrap();
        let rows = out.centers.to_rows();
        let has_heavy_center = rows.iter().any(|c| (c[0] - 10.0).abs() < 1e-9);
        assert!(has_heavy_center, "centers {rows:?}");
    }

    #[test]
    fn empty_inputs_are_errors() {
        let points = two_blobs();
        let empty_centers = Centers::new(2);
        assert!(lloyd(&points, &empty_centers, LloydConfig::default()).is_err());
        let empty_points = PointSet::new(2);
        let init = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        assert!(lloyd(&empty_points, &init, LloydConfig::default()).is_err());
    }

    #[test]
    fn block_path_matches_point_set_path() {
        let points = two_blobs();
        let block = crate::block::PointBlock::from_point_set(&points);
        let init = Centers::from_rows(2, &[vec![0.0, 0.0], vec![9.0, 9.0]]).unwrap();
        let a = lloyd(&points, &init, LloydConfig::default()).unwrap();
        let b = lloyd_block(&block, &init, LloydConfig::default()).unwrap();
        assert_eq!(a.centers.to_rows(), b.centers.to_rows());
        assert_eq!(a.iterations, b.iterations);
        assert!((a.cost - b.cost).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_is_reseeded() {
        // Second center starts so far away that no point is assigned to it;
        // after one update it must land on some input point.
        let points = two_blobs();
        let init = Centers::from_rows(2, &[vec![5.0, 5.0], vec![1e9, 1e9]]).unwrap();
        let out = lloyd(&points, &init, LloydConfig::default()).unwrap();
        assert_eq!(out.centers.len(), 2);
        // Both centers must be within the data bounding box after reseeding.
        for c in out.centers.iter() {
            assert!(c[0] <= 11.0 && c[0] >= -1.0, "center escaped: {c:?}");
        }
    }
}
