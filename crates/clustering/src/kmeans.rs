//! Batch k-means: best-of-R runs of (k-means++ seeding, Lloyd refinement).
//!
//! This is the exact procedure the paper's evaluation uses whenever a
//! clustering must be extracted from a point set (Section 5.2): "take the
//! best clustering out of five independent runs of k-means++; each run of
//! k-means++ is followed by up to 20 iterations of Lloyd's algorithm".
//! It also serves as the batch baseline line in Figure 4.

use crate::block::{BlockView, PointBlock};
use crate::centers::Centers;
use crate::distance::squared_norms;
use crate::error::{ClusteringError, Result};
use crate::kmeanspp::kmeanspp_view;
use crate::lloyd::{lloyd_view, LloydConfig};
use crate::point::PointSet;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the batch k-means procedure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters `k`.
    pub k: usize,
    /// Number of independent (seeding + refinement) runs; the best is kept.
    pub runs: usize,
    /// Maximum Lloyd iterations per run (0 disables refinement).
    pub max_lloyd_iterations: usize,
    /// Relative improvement threshold for Lloyd convergence.
    pub tolerance: f64,
}

impl KMeans {
    /// Creates a configuration with the paper's defaults: a single run and
    /// 20 Lloyd iterations.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            runs: 1,
            max_lloyd_iterations: 20,
            tolerance: 1e-6,
        }
    }

    /// Sets the number of independent runs (the paper's harness uses 5).
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the Lloyd iteration cap.
    #[must_use]
    pub fn with_max_lloyd_iterations(mut self, iters: usize) -> Self {
        self.max_lloyd_iterations = iters;
        self
    }

    /// Sets the convergence tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Runs the procedure on a weighted point set.
    ///
    /// This is a thin adapter over the fused kernel path: the point-norm
    /// cache is computed once and shared by every seeding run, every Lloyd
    /// iteration and every cost evaluation.
    ///
    /// # Errors
    /// * [`ClusteringError::InvalidK`] if `k == 0`.
    /// * [`ClusteringError::EmptyInput`] if `points` is empty.
    /// * [`ClusteringError::InvalidParameter`] if `runs == 0`.
    pub fn fit<R: Rng + ?Sized>(&self, points: &PointSet, rng: &mut R) -> Result<KMeansResult> {
        self.validate(points.is_empty())?;
        let norms = squared_norms(points.coords(), points.dim());
        Ok(self.fit_view(BlockView::over(points, &norms), rng))
    }

    /// [`KMeans::fit`] over a [`PointBlock`], reusing its cached norms.
    ///
    /// # Errors
    /// Same failure modes as [`KMeans::fit`].
    pub fn fit_block<R: Rng + ?Sized>(
        &self,
        block: &PointBlock,
        rng: &mut R,
    ) -> Result<KMeansResult> {
        self.validate(block.is_empty())?;
        Ok(self.fit_view(block.view(), rng))
    }

    fn validate(&self, empty_input: bool) -> Result<()> {
        if self.k == 0 {
            return Err(ClusteringError::InvalidK { k: self.k });
        }
        if empty_input {
            return Err(ClusteringError::EmptyInput);
        }
        if self.runs == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "runs",
                message: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// Fused-kernel core shared by [`KMeans::fit`] and [`KMeans::fit_block`].
    fn fit_view<R: Rng + ?Sized>(&self, view: BlockView<'_>, rng: &mut R) -> KMeansResult {
        let lloyd_config = LloydConfig {
            max_iterations: self.max_lloyd_iterations,
            tolerance: self.tolerance,
        };

        let mut best: Option<KMeansResult> = None;
        for _ in 0..self.runs {
            let seeded = kmeanspp_view(view, self.k, rng);
            let (centers, cost, iterations) = if self.max_lloyd_iterations == 0 {
                let cost = crate::cost::kmeans_cost_view(view, &seeded);
                (seeded, cost, 0)
            } else {
                let out = lloyd_view(view, &seeded, lloyd_config);
                (out.centers, out.cost, out.iterations)
            };
            let candidate = KMeansResult {
                centers,
                cost,
                lloyd_iterations: iterations,
            };
            match &best {
                Some(b) if b.cost <= candidate.cost => {}
                _ => best = Some(candidate),
            }
        }
        best.expect("runs >= 1")
    }
}

/// Result of [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// The best centers found.
    pub centers: Centers,
    /// Weighted k-means cost of those centers on the training points.
    pub cost: f64,
    /// Lloyd iterations of the winning run.
    pub lloyd_iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kmeans_cost;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn four_blobs() -> PointSet {
        let mut s = PointSet::new(2);
        let anchors = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        for (ax, ay) in anchors {
            for i in 0..16 {
                let dx = f64::from(i % 4) * 0.2;
                let dy = f64::from(i / 4) * 0.2;
                s.push(&[ax + dx, ay + dy], 1.0);
            }
        }
        s
    }

    #[test]
    fn finds_four_blobs() {
        let points = four_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let result = KMeans::new(4).with_runs(3).fit(&points, &mut rng).unwrap();
        assert_eq!(result.centers.len(), 4);
        // Within-blob spread is 0.6 x 0.6, so a correct clustering has a
        // tiny cost compared to merging any two blobs (distance 20 apart).
        assert!(result.cost < 50.0, "cost = {}", result.cost);
    }

    #[test]
    fn more_runs_never_hurt() {
        let points = four_blobs();
        let single = KMeans::new(4)
            .with_runs(1)
            .fit(&points, &mut ChaCha8Rng::seed_from_u64(3))
            .unwrap();
        let multi = KMeans::new(4)
            .with_runs(8)
            .fit(&points, &mut ChaCha8Rng::seed_from_u64(3))
            .unwrap();
        // The first run of the multi-run fit uses the same RNG stream as the
        // single run, so best-of-8 can only be at least as good.
        assert!(multi.cost <= single.cost + 1e-9);
    }

    #[test]
    fn reported_cost_is_consistent() {
        let points = four_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let result = KMeans::new(3).fit(&points, &mut rng).unwrap();
        let recomputed = kmeans_cost(&points, &result.centers).unwrap();
        assert!((recomputed - result.cost).abs() <= 1e-9 * (1.0 + recomputed));
    }

    #[test]
    fn zero_lloyd_iterations_is_pure_seeding() {
        let points = four_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let result = KMeans::new(4)
            .with_max_lloyd_iterations(0)
            .fit(&points, &mut rng)
            .unwrap();
        assert_eq!(result.lloyd_iterations, 0);
        assert!(result.cost.is_finite());
    }

    #[test]
    fn invalid_configs_are_errors() {
        let points = four_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(KMeans::new(0).fit(&points, &mut rng).is_err());
        assert!(KMeans::new(2).with_runs(0).fit(&points, &mut rng).is_err());
        let empty = PointSet::new(2);
        assert!(KMeans::new(2).fit(&empty, &mut rng).is_err());
    }

    #[test]
    fn fit_block_matches_fit_exactly() {
        let points = four_blobs();
        let block = PointBlock::from_point_set(&points);
        let a = KMeans::new(4)
            .with_runs(2)
            .fit(&points, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap();
        let b = KMeans::new(4)
            .with_runs(2)
            .fit_block(&block, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a.centers.to_rows(), b.centers.to_rows());
        assert!((a.cost - b.cost).abs() < 1e-12);
    }

    #[test]
    fn works_with_fewer_points_than_k() {
        let mut points = PointSet::new(2);
        points.push(&[0.0, 0.0], 1.0);
        points.push(&[5.0, 5.0], 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let result = KMeans::new(10).fit(&points, &mut rng).unwrap();
        assert!(result.centers.len() <= 10);
        assert!(result.cost <= 1e-9);
    }
}
