//! Flat structure-of-arrays point storage with cached squared norms.
//!
//! [`PointBlock`] is the hot-path representation used by every
//! distance-heavy inner loop in the workspace: one contiguous `Vec<f64>` of
//! `n × d` coordinates, a parallel weight slice, and a cached `‖x‖²` per
//! point. The cached norms are what make the fused distance kernel
//! ([`crate::distance::sq_dist_block`]) pay off — once `‖x‖²` is known,
//! every `‖x − c‖²` collapses to a single dot product, and the norms are
//! computed exactly once per point no matter how many passes k-means++
//! seeding, Lloyd iterations or repeated k-means runs make over the data.
//!
//! [`BlockView`] is the borrowed form that the kernels actually consume. It
//! lets [`crate::PointSet`]-based public APIs stay thin adapters: they
//! compute a norm cache once per call, borrow the coordinates they already
//! own, and hand a `BlockView` to the same fused core the block-native
//! entry points use.

use crate::distance::{squared_norm, squared_norms};
use crate::error::{ClusteringError, Result};
use crate::point::PointSet;
use serde::{Deserialize, Serialize, Value};

/// A weighted point block in `R^d`: flat row-major coordinates, per-point
/// weights and cached squared norms, all in parallel arrays.
///
/// Unlike [`PointSet`] (the general-purpose container used for storage and
/// serialization), a `PointBlock` maintains `norms[i] = ‖point i‖²` as an
/// invariant on every push, so fused distance kernels never recompute norms.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBlock {
    dim: usize,
    coords: Vec<f64>,
    weights: Vec<f64>,
    norms: Vec<f64>,
}

impl PointBlock {
    /// Creates an empty block of dimension `dim` without allocating.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "point dimension must be positive");
        Self {
            dim,
            coords: Vec::new(),
            weights: Vec::new(),
            norms: Vec::new(),
        }
    }

    /// Creates an empty block with capacity for `capacity` points.
    #[must_use]
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "point dimension must be positive");
        Self {
            dim,
            coords: Vec::with_capacity(capacity * dim),
            weights: Vec::with_capacity(capacity),
            norms: Vec::with_capacity(capacity),
        }
    }

    /// Builds a block from a [`PointSet`], computing the norm cache in one
    /// `O(nd)` pass.
    #[must_use]
    pub fn from_point_set(points: &PointSet) -> Self {
        Self {
            dim: points.dim(),
            coords: points.coords().to_vec(),
            weights: points.weights().to_vec(),
            norms: squared_norms(points.coords(), points.dim()),
        }
    }

    /// Builds a block by taking ownership of a [`PointSet`]'s buffers (no
    /// coordinate copy); only the norm cache is computed.
    #[must_use]
    pub fn from_point_set_owned(points: PointSet) -> Self {
        let (dim, coords, weights) = points.into_raw();
        let norms = squared_norms(&coords, dim);
        Self {
            dim,
            coords,
            weights,
            norms,
        }
    }

    /// Reserves spare capacity for at least `additional` more points, so
    /// subsequent pushes write straight into the reserved tail without
    /// reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.coords.reserve(additional * self.dim);
        self.weights.reserve(additional);
        self.norms.reserve(additional);
    }

    /// Number of points the block can hold before its coordinate buffer
    /// must grow.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.weights
            .capacity()
            .min(self.coords.capacity() / self.dim)
    }

    /// Dimension `d` of the points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when the block holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Appends a point, computing and caching its squared norm.
    ///
    /// # Panics
    /// Panics if the point's dimension differs from the block's dimension.
    #[inline]
    pub fn push(&mut self, point: &[f64], weight: f64) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.coords.extend_from_slice(point);
        self.weights.push(weight);
        self.norms.push(squared_norm(point));
    }

    /// Appends a point, reporting shape/weight problems as errors.
    ///
    /// # Errors
    /// Returns an error if the dimension does not match or the weight is
    /// negative / non-finite.
    pub fn try_push(&mut self, point: &[f64], weight: f64) -> Result<()> {
        if point.len() != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(ClusteringError::InvalidWeight { index: self.len() });
        }
        self.push(point, weight);
        Ok(())
    }

    /// Appends every point of `set`, extending the norm cache.
    ///
    /// # Errors
    /// Returns an error if dimensions differ.
    pub fn extend_from_set(&mut self, set: &PointSet) -> Result<()> {
        if set.dim() != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: set.dim(),
            });
        }
        self.coords.extend_from_slice(set.coords());
        self.weights.extend_from_slice(set.weights());
        self.norms
            .extend(set.coords().chunks_exact(self.dim).map(squared_norm));
        Ok(())
    }

    /// Appends every point of `other`, **reusing** its cached norms instead
    /// of recomputing them — this is how query paths thread the norms a
    /// bucket buffer computed at update time through to the fused kernels.
    ///
    /// # Errors
    /// Returns an error if dimensions differ.
    pub fn extend_from_block(&mut self, other: &PointBlock) -> Result<()> {
        if other.dim != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        self.coords.extend_from_slice(&other.coords);
        self.weights.extend_from_slice(&other.weights);
        self.norms.extend_from_slice(&other.norms);
        Ok(())
    }

    /// Appends every point of this block to `set`.
    ///
    /// # Errors
    /// Returns an error if dimensions differ.
    pub fn append_to(&self, set: &mut PointSet) -> Result<()> {
        if set.dim() != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: set.dim(),
                got: self.dim,
            });
        }
        set.extend_from_raw(&self.coords, &self.weights);
        Ok(())
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Weight of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Cached squared norm `‖point i‖²`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Raw row-major coordinate storage.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Raw weight storage.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Cached squared-norm storage (`norms()[i] = ‖point i‖²`).
    #[must_use]
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Removes all points while keeping the allocations.
    pub fn clear(&mut self) {
        self.coords.clear();
        self.weights.clear();
        self.norms.clear();
    }

    /// Borrowed view suitable for the fused kernels.
    #[must_use]
    pub fn view(&self) -> BlockView<'_> {
        BlockView {
            dim: self.dim,
            coords: &self.coords,
            weights: &self.weights,
            norms: &self.norms,
        }
    }

    /// Converts into a [`PointSet`] by moving the coordinate and weight
    /// buffers (no copy); the norm cache is dropped.
    #[must_use]
    pub fn into_point_set(self) -> PointSet {
        PointSet::from_rows(self.dim, self.coords, self.weights)
            .expect("PointBlock invariants guarantee a valid PointSet")
    }

    /// Copies the block into a fresh [`PointSet`].
    #[must_use]
    pub fn to_point_set(&self) -> PointSet {
        PointSet::from_rows(self.dim, self.coords.clone(), self.weights.clone())
            .expect("PointBlock invariants guarantee a valid PointSet")
    }
}

/// Only `dim`, coordinates and weights are serialized; the norm cache is
/// recomputed on deserialization (it is a pure function of the coordinates,
/// so the rebuilt cache is bit-identical and the invariant cannot be
/// poisoned by a hand-edited snapshot).
impl Serialize for PointBlock {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("coords".to_string(), self.coords.to_value()),
            ("weights".to_string(), self.weights.to_value()),
        ])
    }
}

impl Deserialize for PointBlock {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let map = match value {
            Value::Map(m) => m,
            _ => return Err(serde::Error::custom("expected map for PointBlock")),
        };
        let dim: usize = Deserialize::from_value(serde::get_field(map, "dim")?)?;
        let coords: Vec<f64> = Deserialize::from_value(serde::get_field(map, "coords")?)?;
        let weights: Vec<f64> = Deserialize::from_value(serde::get_field(map, "weights")?)?;
        if dim == 0 {
            return Err(serde::Error::custom(
                "PointBlock dimension must be positive",
            ));
        }
        if coords.len() != weights.len() * dim {
            return Err(serde::Error::custom(
                "PointBlock coordinate/weight lengths are inconsistent",
            ));
        }
        // Mirror the push-path validation: the vendored JSON layer decodes
        // `null` as NaN, so a corrupt or hand-edited snapshot could
        // otherwise smuggle in values that poison every cached norm and
        // distance downstream.
        if coords.iter().any(|x| !x.is_finite()) {
            return Err(serde::Error::custom(
                "PointBlock coordinates must be finite",
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(serde::Error::custom(
                "PointBlock weights must be finite and non-negative",
            ));
        }
        let norms = squared_norms(&coords, dim);
        Ok(Self {
            dim,
            coords,
            weights,
            norms,
        })
    }
}

impl From<&PointSet> for PointBlock {
    fn from(points: &PointSet) -> Self {
        PointBlock::from_point_set(points)
    }
}

impl From<PointBlock> for PointSet {
    fn from(block: PointBlock) -> Self {
        block.into_point_set()
    }
}

/// Borrowed structure-of-arrays view over weighted points with a norm cache.
///
/// This is the argument type of every fused inner loop. Block-native code
/// gets it from [`PointBlock::view`]; [`PointSet`] adapters build it with
/// [`BlockView::over`] after computing a norm cache once per call.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    dim: usize,
    coords: &'a [f64],
    weights: &'a [f64],
    norms: &'a [f64],
}

impl<'a> BlockView<'a> {
    /// Builds a view over a [`PointSet`] and a caller-provided norm cache
    /// (one `‖x‖²` per point, e.g. from [`squared_norms`]).
    ///
    /// # Panics
    /// Panics if `norms` does not have exactly one entry per point.
    #[must_use]
    pub fn over(points: &'a PointSet, norms: &'a [f64]) -> Self {
        assert_eq!(norms.len(), points.len(), "norm cache length mismatch");
        Self {
            dim: points.dim(),
            coords: points.coords(),
            weights: points.weights(),
            norms,
        }
    }

    /// Dimension `d` of the points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when the view covers no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn point(&self, i: usize) -> &'a [f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Weight of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Cached squared norm of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Raw row-major coordinates.
    #[must_use]
    pub fn coords(&self) -> &'a [f64] {
        self.coords
    }

    /// Raw weights.
    #[must_use]
    pub fn weights(&self) -> &'a [f64] {
        self.weights
    }

    /// Raw norm cache.
    #[must_use]
    pub fn norms(&self) -> &'a [f64] {
        self.norms
    }

    /// Iterator over `(coordinates, weight, squared norm)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&'a [f64], f64, f64)> + 'a {
        self.coords
            .chunks_exact(self.dim)
            .zip(self.weights.iter().copied())
            .zip(self.norms.iter().copied())
            .map(|((p, w), n)| (p, w, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_distance;

    fn sample_block() -> PointBlock {
        let mut b = PointBlock::new(2);
        b.push(&[3.0, 4.0], 1.0);
        b.push(&[1.0, 0.0], 2.0);
        b.push(&[0.0, 0.0], 0.5);
        b
    }

    #[test]
    fn push_maintains_norm_cache() {
        let b = sample_block();
        assert_eq!(b.len(), 3);
        assert_eq!(b.norms(), &[25.0, 1.0, 0.0]);
        assert_eq!(b.point(0), &[3.0, 4.0]);
        assert_eq!(b.weight(1), 2.0);
        assert_eq!(b.norm(0), 25.0);
        assert!((b.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn try_push_validates() {
        let mut b = PointBlock::new(2);
        assert!(b.try_push(&[1.0], 1.0).is_err());
        assert!(b.try_push(&[1.0, 2.0], -1.0).is_err());
        assert!(b.try_push(&[1.0, 2.0], f64::NAN).is_err());
        assert!(b.try_push(&[1.0, 2.0], 1.0).is_ok());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn round_trips_with_point_set() {
        let b = sample_block();
        let set = b.to_point_set();
        assert_eq!(set.len(), 3);
        assert_eq!(set.point(0), &[3.0, 4.0]);
        let back = PointBlock::from_point_set(&set);
        assert_eq!(back, b);
        let moved = b.clone().into_point_set();
        assert_eq!(moved, set);
    }

    #[test]
    fn extend_from_set_extends_norms() {
        let mut b = PointBlock::new(2);
        let set = sample_block().to_point_set();
        b.extend_from_set(&set).unwrap();
        assert_eq!(b.norms(), &[25.0, 1.0, 0.0]);
        let bad = PointSet::new(3);
        assert!(b.extend_from_set(&bad).is_err());
    }

    #[test]
    fn extend_from_block_copies_cached_norms() {
        let mut b = PointBlock::new(2);
        b.push(&[1.0, 1.0], 1.0);
        let other = sample_block();
        b.extend_from_block(&other).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.norms(), &[2.0, 25.0, 1.0, 0.0]);
        assert_eq!(b.point(1), &[3.0, 4.0]);
        let wrong = PointBlock::new(3);
        assert!(b.extend_from_block(&wrong).is_err());
    }

    #[test]
    fn from_point_set_owned_matches_borrowed_conversion() {
        let set = sample_block().to_point_set();
        let owned = PointBlock::from_point_set_owned(set.clone());
        assert_eq!(owned, PointBlock::from_point_set(&set));
    }

    #[test]
    fn append_to_copies_points_and_weights() {
        let b = sample_block();
        let mut set = PointSet::new(2);
        set.push(&[9.0, 9.0], 4.0);
        b.append_to(&mut set).unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.point(1), &[3.0, 4.0]);
        assert_eq!(set.weight(3), 0.5);
        let mut wrong = PointSet::new(3);
        assert!(b.append_to(&mut wrong).is_err());
    }

    #[test]
    fn reserve_creates_spare_capacity() {
        let mut b = PointBlock::new(4);
        b.reserve(100);
        assert!(b.capacity() >= 100);
        let before = b.coords().as_ptr();
        for i in 0..100 {
            b.push(&[f64::from(i), 0.0, 0.0, 1.0], 1.0);
        }
        // Writing into the reserved tail must not move the buffer.
        assert_eq!(b.coords().as_ptr(), before);
    }

    #[test]
    fn clear_keeps_dim_and_allocation() {
        let mut b = sample_block();
        b.reserve(10);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2);
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn view_exposes_consistent_triples() {
        let b = sample_block();
        let view = b.view();
        assert_eq!(view.len(), 3);
        assert_eq!(view.dim(), 2);
        for (i, (p, w, n)) in view.iter().enumerate() {
            assert_eq!(p, view.point(i));
            assert_eq!(w, view.weight(i));
            assert!((n - squared_distance(p, &[0.0, 0.0])).abs() < 1e-12);
            assert_eq!(n, view.norm(i));
        }
    }

    #[test]
    fn view_over_point_set_with_norms() {
        let set = sample_block().to_point_set();
        let norms = squared_norms(set.coords(), set.dim());
        let view = BlockView::over(&set, &norms);
        assert_eq!(view.norm(0), 25.0);
        assert_eq!(view.weights(), set.weights());
    }

    #[test]
    #[should_panic(expected = "norm cache length mismatch")]
    fn view_over_rejects_wrong_norm_count() {
        let set = sample_block().to_point_set();
        let norms = [1.0];
        let _ = BlockView::over(&set, &norms);
    }

    #[test]
    fn serde_round_trip_rebuilds_norms() {
        let b = sample_block();
        let json = serde_json::to_string(&b).unwrap();
        let back: PointBlock = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.norms(), &[25.0, 1.0, 0.0]);
    }

    #[test]
    fn serde_rejects_inconsistent_shapes() {
        use serde::{Deserialize as _, Value};
        let bad = Value::Map(vec![
            ("dim".to_string(), Value::UInt(2)),
            (
                "coords".to_string(),
                Value::Seq(vec![
                    Value::Float(1.0),
                    Value::Float(2.0),
                    Value::Float(3.0),
                ]),
            ),
            ("weights".to_string(), Value::Seq(vec![Value::Float(1.0)])),
        ]);
        assert!(PointBlock::from_value(&bad).is_err());
        assert!(PointBlock::from_value(&Value::Null).is_err());
    }

    #[test]
    fn serde_rejects_non_finite_coordinates_and_bad_weights() {
        // JSON `null` decodes to NaN in the vendored serde; neither a NaN
        // coordinate nor a NaN/negative weight may survive a restore.
        for bad in [
            r#"{"dim":2,"coords":[null,1],"weights":[1]}"#,
            r#"{"dim":2,"coords":[1,1],"weights":[null]}"#,
            r#"{"dim":2,"coords":[1,1],"weights":[-1]}"#,
        ] {
            assert!(
                serde_json::from_str::<PointBlock>(bad).is_err(),
                "accepted: {bad}"
            );
        }
        let good: PointBlock =
            serde_json::from_str(r#"{"dim":2,"coords":[1,2],"weights":[0.5]}"#).unwrap();
        assert_eq!(good.len(), 1);
    }
}
