//! The k-means objective `φ_Ψ(P)` and cluster assignments.
//!
//! Problem 1 of the paper: given a weighted point set `P` and a candidate
//! center set `Ψ`, the clustering cost is
//! `φ_Ψ(P) = Σ_{x∈P} w(x) · D²(x, Ψ)` — the within-cluster sum of squares
//! (SSQ) used as the accuracy metric throughout the evaluation.
//!
//! All entry points route through one fused inner loop over a
//! [`BlockView`]: the [`PointSet`] adapters compute a squared-norm cache
//! once per call, while the `_block` variants reuse the norms cached in a
//! [`PointBlock`].

use crate::block::{BlockView, PointBlock};
use crate::centers::Centers;
use crate::distance::{nearest_block_row, squared_norms};
use crate::error::{ClusteringError, Result};
use crate::point::PointSet;

fn check_shapes(points_dim: usize, centers: &Centers) -> Result<()> {
    if centers.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if points_dim != centers.dim() {
        return Err(ClusteringError::DimensionMismatch {
            expected: points_dim,
            got: centers.dim(),
        });
    }
    Ok(())
}

/// Weighted k-means cost `φ_Ψ(P)` of `points` with respect to `centers`.
///
/// Returns `0.0` for an empty point set (an empty sum), and an error when the
/// center set is empty or dimensions do not match.
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when `centers` is empty and
/// `points` is not, or a dimension mismatch error.
pub fn kmeans_cost(points: &PointSet, centers: &Centers) -> Result<f64> {
    if points.is_empty() {
        return Ok(0.0);
    }
    check_shapes(points.dim(), centers)?;
    let norms = squared_norms(points.coords(), points.dim());
    Ok(kmeans_cost_view(BlockView::over(points, &norms), centers))
}

/// [`kmeans_cost`] over a [`PointBlock`], reusing its cached norms.
///
/// # Errors
/// Same failure modes as [`kmeans_cost`].
pub fn kmeans_cost_block(block: &PointBlock, centers: &Centers) -> Result<f64> {
    if block.is_empty() {
        return Ok(0.0);
    }
    check_shapes(block.dim(), centers)?;
    Ok(kmeans_cost_view(block.view(), centers))
}

/// Fused-kernel core of [`kmeans_cost`]. The caller has validated shapes.
pub(crate) fn kmeans_cost_view(view: BlockView<'_>, centers: &Centers) -> f64 {
    let center_norms = squared_norms(centers.coords(), centers.dim());
    let mut cost = 0.0;
    for (p, w, n) in view.iter() {
        let (_, d2) = nearest_block_row(p, n, centers.coords(), &center_norms, centers.dim())
            .expect("non-empty centers");
        cost += w * d2;
    }
    cost
}

/// Assignment of each point to its nearest center.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `labels[i]` is the index of the nearest center for point `i`.
    pub labels: Vec<usize>,
    /// Total weighted cost of the assignment (equals [`kmeans_cost`]).
    pub cost: f64,
    /// Total weight assigned to each center.
    pub cluster_weights: Vec<f64>,
}

/// Assigns every point of `points` to its nearest center in `centers`.
///
/// # Errors
/// Same failure modes as [`kmeans_cost`].
pub fn assign(points: &PointSet, centers: &Centers) -> Result<Assignment> {
    check_shapes(points.dim(), centers)?;
    let norms = squared_norms(points.coords(), points.dim());
    Ok(assign_view(BlockView::over(points, &norms), centers))
}

/// [`assign`] over a [`PointBlock`], reusing its cached norms.
///
/// # Errors
/// Same failure modes as [`kmeans_cost`].
pub fn assign_block(block: &PointBlock, centers: &Centers) -> Result<Assignment> {
    check_shapes(block.dim(), centers)?;
    Ok(assign_view(block.view(), centers))
}

/// Fused-kernel core of [`assign`]. The caller has validated shapes.
pub(crate) fn assign_view(view: BlockView<'_>, centers: &Centers) -> Assignment {
    let center_norms = squared_norms(centers.coords(), centers.dim());
    let mut labels = Vec::with_capacity(view.len());
    let mut cluster_weights = vec![0.0; centers.len()];
    let mut cost = 0.0;
    for (p, w, n) in view.iter() {
        let (idx, d2) = nearest_block_row(p, n, centers.coords(), &center_norms, centers.dim())
            .expect("non-empty centers");
        labels.push(idx);
        cluster_weights[idx] += w;
        cost += w * d2;
    }
    Assignment {
        labels,
        cost,
        cluster_weights,
    }
}

/// Per-cluster contribution to the total cost. `result[j]` is the weighted
/// SSQ of the points assigned to center `j`.
///
/// # Errors
/// Same failure modes as [`kmeans_cost`].
pub fn per_cluster_cost(points: &PointSet, centers: &Centers) -> Result<Vec<f64>> {
    check_shapes(points.dim(), centers)?;
    let norms = squared_norms(points.coords(), points.dim());
    let view = BlockView::over(points, &norms);
    let center_norms = squared_norms(centers.coords(), centers.dim());
    let mut out = vec![0.0; centers.len()];
    for (p, w, n) in view.iter() {
        let (idx, d2) = nearest_block_row(p, n, centers.coords(), &center_norms, centers.dim())
            .expect("non-empty centers");
        out[idx] += w * d2;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> PointSet {
        // Four unit-weight points at the corners of a 2x2 square.
        let mut s = PointSet::new(2);
        s.push(&[0.0, 0.0], 1.0);
        s.push(&[2.0, 0.0], 1.0);
        s.push(&[0.0, 2.0], 1.0);
        s.push(&[2.0, 2.0], 1.0);
        s
    }

    #[test]
    fn cost_against_centroid() {
        let points = square_points();
        let centers = Centers::from_rows(2, &[vec![1.0, 1.0]]).unwrap();
        // Every point is at squared distance 2 from the centroid.
        let cost = kmeans_cost(&points, &centers).unwrap();
        assert!((cost - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cost_respects_weights() {
        let mut points = PointSet::new(1);
        points.push(&[0.0], 3.0);
        points.push(&[4.0], 1.0);
        let centers = Centers::from_rows(1, &[vec![0.0]]).unwrap();
        let cost = kmeans_cost(&points, &centers).unwrap();
        assert!((cost - 16.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_when_centers_cover_points() {
        let points = square_points();
        let centers = Centers::from_rows(
            2,
            &[
                vec![0.0, 0.0],
                vec![2.0, 0.0],
                vec![0.0, 2.0],
                vec![2.0, 2.0],
            ],
        )
        .unwrap();
        assert_eq!(kmeans_cost(&points, &centers).unwrap(), 0.0);
    }

    #[test]
    fn empty_points_have_zero_cost() {
        let points = PointSet::new(2);
        let centers = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        assert_eq!(kmeans_cost(&points, &centers).unwrap(), 0.0);
    }

    #[test]
    fn empty_centers_is_error() {
        let points = square_points();
        let centers = Centers::new(2);
        assert!(kmeans_cost(&points, &centers).is_err());
        assert!(assign(&points, &centers).is_err());
        assert!(per_cluster_cost(&points, &centers).is_err());
    }

    #[test]
    fn dim_mismatch_is_error() {
        let points = square_points();
        let centers = Centers::from_rows(3, &[vec![0.0, 0.0, 0.0]]).unwrap();
        assert!(kmeans_cost(&points, &centers).is_err());
    }

    #[test]
    fn assignment_labels_and_weights() {
        let points = square_points();
        let centers = Centers::from_rows(2, &[vec![0.0, 0.0], vec![2.0, 2.0]]).unwrap();
        let a = assign(&points, &centers).unwrap();
        assert_eq!(a.labels, vec![0, 0, 0, 1]);
        // Ties ([2,0] and [0,2] are equidistant) resolve to the first center.
        assert_eq!(a.cluster_weights, vec![3.0, 1.0]);
        assert!((a.cost - 8.0).abs() < 1e-12);
    }

    #[test]
    fn block_variants_agree_with_point_set_variants() {
        let points = square_points();
        let block = PointBlock::from_point_set(&points);
        let centers = Centers::from_rows(2, &[vec![0.5, 0.5], vec![2.0, 2.0]]).unwrap();
        let a = kmeans_cost(&points, &centers).unwrap();
        let b = kmeans_cost_block(&block, &centers).unwrap();
        assert!((a - b).abs() < 1e-12);
        let asg_a = assign(&points, &centers).unwrap();
        let asg_b = assign_block(&block, &centers).unwrap();
        assert_eq!(asg_a, asg_b);
    }

    #[test]
    fn empty_block_has_zero_cost() {
        let block = PointBlock::new(2);
        let centers = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        assert_eq!(kmeans_cost_block(&block, &centers).unwrap(), 0.0);
    }

    #[test]
    fn per_cluster_cost_sums_to_total() {
        let points = square_points();
        let centers = Centers::from_rows(2, &[vec![0.5, 0.5], vec![2.0, 2.0]]).unwrap();
        let per = per_cluster_cost(&points, &centers).unwrap();
        let total = kmeans_cost(&points, &centers).unwrap();
        let sum: f64 = per.iter().sum();
        assert!((sum - total).abs() < 1e-9);
    }
}
