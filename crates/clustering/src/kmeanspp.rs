//! Weighted k-means++ seeding (Arthur & Vassilvitskii, SODA 2007).
//!
//! Theorem 1 of the paper: on an input of `n` points, k-means++ returns `k`
//! centers `Ψ` with `E[φ_Ψ(P)] ≤ 8(ln k + 2)·φ_OPT(P)` in time `O(kdn)`.
//!
//! The streaming algorithms use k-means++ in two places:
//! * to derive coresets from buckets of points (Section 5.2), and
//! * to extract the final `k` centers from the merged coreset at query time.
//!
//! Both call sites operate on *weighted* points, so the implementation keeps
//! the D² distribution weighted: the probability of selecting point `x` as
//! the next center is proportional to `w(x) · D²(x, Ψ_so_far)`.

use crate::block::{BlockView, PointBlock};
use crate::centers::Centers;
use crate::distance::sq_dist_block;
use crate::error::{ClusteringError, Result};
use crate::point::PointSet;
use crate::sampling::{uniform_index, weighted_index};
use rand::Rng;

/// Runs weighted k-means++ seeding, returning `min(k, points.len())`
/// centers.
///
/// The seeding follows the classic algorithm:
/// 1. Pick the first center with probability proportional to `w(x)`.
/// 2. Repeatedly pick the next center with probability proportional to
///    `w(x) · D²(x, chosen)`, where `D²` is the squared distance to the
///    closest already-chosen center.
///
/// If at some step every remaining point has zero D² mass (for example, all
/// points are duplicates of chosen centers), the remaining centers are drawn
/// uniformly at random from the input, which matches the behaviour of
/// widely-used implementations.
///
/// Each returned center carries the weight of the input point it was copied
/// from (callers that need assignment mass should run [`crate::cost::assign`]).
///
/// This is a thin adapter over the fused kernel path: it computes a
/// squared-norm cache once and delegates to the same core as
/// [`kmeanspp_block`].
///
/// # Errors
/// * [`ClusteringError::EmptyInput`] if `points` is empty.
/// * [`ClusteringError::InvalidK`] if `k == 0`.
pub fn kmeanspp<R: Rng + ?Sized>(points: &PointSet, k: usize, rng: &mut R) -> Result<Centers> {
    if k == 0 {
        return Err(ClusteringError::InvalidK { k });
    }
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let norms = crate::distance::squared_norms(points.coords(), points.dim());
    Ok(kmeanspp_view(BlockView::over(points, &norms), k, rng))
}

/// [`kmeanspp`] over a [`PointBlock`], reusing its cached squared norms so
/// no per-call norm pass is needed.
///
/// # Errors
/// Same failure modes as [`kmeanspp`].
pub fn kmeanspp_block<R: Rng + ?Sized>(
    block: &PointBlock,
    k: usize,
    rng: &mut R,
) -> Result<Centers> {
    if k == 0 {
        return Err(ClusteringError::InvalidK { k });
    }
    if block.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    Ok(kmeanspp_view(block.view(), k, rng))
}

/// Fused-kernel core of k-means++ seeding. The caller guarantees a
/// non-empty view and `k > 0`.
///
/// Every D² evaluation uses `‖x‖² − 2·x·c + ‖c‖²` with the point norm read
/// from the view's cache and the center norm computed once per selected
/// center, so the incremental distribution update costs one dot product per
/// point per round.
pub(crate) fn kmeanspp_view<R: Rng + ?Sized>(
    view: BlockView<'_>,
    k: usize,
    rng: &mut R,
) -> Centers {
    let n = view.len();
    let dim = view.dim();
    let k_eff = k.min(n);

    let mut centers = Centers::with_capacity(dim, k_eff);

    // First center: sample proportionally to weight (uniform if all weights
    // are zero).
    let first = weighted_index(view.weights(), rng)
        .or_else(|| uniform_index(n, rng))
        .expect("non-empty point set");
    centers.push(view.point(first), view.weight(first));

    // dist2[i] = w(i) * D²(point i, chosen centers); updated incrementally as
    // centers are added so seeding stays O(k d n).
    let first_norm = view.norm(first);
    let first_center = centers.center(0);
    let mut dist2: Vec<f64> = view
        .iter()
        .map(|(p, w, norm)| w * sq_dist_block(p, norm, first_center, first_norm))
        .collect();

    while centers.len() < k_eff {
        let chosen = match weighted_index(&dist2, rng) {
            Some(i) => i,
            // All remaining mass is zero: every point coincides with an
            // existing center. Fall back to uniform sampling so we still
            // return k centers (duplicates are acceptable, cost is 0).
            None => uniform_index(n, rng).expect("non-empty point set"),
        };
        let chosen_norm = view.norm(chosen);
        centers.push(view.point(chosen), view.weight(chosen));
        let new_center = centers.center(centers.len() - 1);
        // Incremental update of the D² distribution through the fused kernel.
        for (i, (p, w, norm)) in view.iter().enumerate() {
            let d = w * sq_dist_block(p, norm, new_center, chosen_norm);
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
    }
    centers
}

/// Runs k-means++ seeding `runs` times and returns the seeding with the
/// lowest k-means cost. Used by the evaluation harness which takes the best
/// of five independent runs (Section 5.2).
///
/// # Errors
/// Same failure modes as [`kmeanspp`]; additionally `runs` must be ≥ 1.
pub fn kmeanspp_best_of<R: Rng + ?Sized>(
    points: &PointSet,
    k: usize,
    runs: usize,
    rng: &mut R,
) -> Result<Centers> {
    if runs == 0 {
        return Err(ClusteringError::InvalidParameter {
            name: "runs",
            message: "must be at least 1".to_string(),
        });
    }
    let mut best: Option<(f64, Centers)> = None;
    for _ in 0..runs {
        let centers = kmeanspp(points, k, rng)?;
        let cost = crate::cost::kmeans_cost(points, &centers)?;
        match &best {
            Some((best_cost, _)) if *best_cost <= cost => {}
            _ => best = Some((cost, centers)),
        }
    }
    Ok(best.expect("runs >= 1").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kmeans_cost;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Three well-separated clusters on a line.
    fn three_clusters() -> PointSet {
        let mut s = PointSet::new(1);
        for i in 0..20 {
            s.push(&[f64::from(i) * 0.01], 1.0);
            s.push(&[100.0 + f64::from(i) * 0.01], 1.0);
            s.push(&[200.0 + f64::from(i) * 0.01], 1.0);
        }
        s
    }

    #[test]
    fn returns_k_centers() {
        let points = three_clusters();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let centers = kmeanspp(&points, 3, &mut rng).unwrap();
        assert_eq!(centers.len(), 3);
        assert_eq!(centers.dim(), 1);
    }

    #[test]
    fn caps_k_at_number_of_points() {
        let mut points = PointSet::new(2);
        points.push(&[0.0, 0.0], 1.0);
        points.push(&[1.0, 1.0], 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let centers = kmeanspp(&points, 10, &mut rng).unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn rejects_k_zero_and_empty_input() {
        let points = three_clusters();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            kmeanspp(&points, 0, &mut rng).unwrap_err(),
            ClusteringError::InvalidK { k: 0 }
        );
        let empty = PointSet::new(1);
        assert_eq!(
            kmeanspp(&empty, 3, &mut rng).unwrap_err(),
            ClusteringError::EmptyInput
        );
    }

    #[test]
    fn finds_separated_clusters() {
        // With 3 well-separated clusters, D² sampling should essentially
        // always put one center in each cluster, giving near-zero cost
        // relative to a single-center solution.
        let points = three_clusters();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let centers = kmeanspp(&points, 3, &mut rng).unwrap();
        let cost3 = kmeans_cost(&points, &centers).unwrap();
        let single = kmeanspp(&points, 1, &mut rng).unwrap();
        let cost1 = kmeans_cost(&points, &single).unwrap();
        assert!(cost3 * 100.0 < cost1, "cost3 = {cost3}, cost1 = {cost1}");
    }

    #[test]
    fn handles_duplicate_points() {
        let mut points = PointSet::new(2);
        for _ in 0..10 {
            points.push(&[1.0, 1.0], 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let centers = kmeanspp(&points, 4, &mut rng).unwrap();
        assert_eq!(centers.len(), 4);
        let cost = kmeans_cost(&points, &centers).unwrap();
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn respects_weights() {
        // One heavy point far away: with k=2 the heavy point should get its
        // own center essentially always.
        let mut points = PointSet::new(1);
        for i in 0..50 {
            points.push(&[f64::from(i) * 0.001], 1.0);
        }
        points.push(&[1000.0], 1000.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let centers = kmeanspp(&points, 2, &mut rng).unwrap();
        let has_far_center = centers.iter().any(|c| (c[0] - 1000.0).abs() < 1.0);
        assert!(has_far_center);
    }

    #[test]
    fn best_of_is_no_worse_than_single_run_in_expectation() {
        let points = three_clusters();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let best = kmeanspp_best_of(&points, 3, 5, &mut rng).unwrap();
        let best_cost = kmeans_cost(&points, &best).unwrap();
        // The best of 5 runs should at least find the separated clusters.
        assert!(best_cost < 1.0, "best cost {best_cost}");
    }

    #[test]
    fn best_of_zero_runs_is_error() {
        let points = three_clusters();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(kmeanspp_best_of(&points, 3, 0, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let points = three_clusters();
        let a = kmeanspp(&points, 3, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = kmeanspp(&points, 3, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn block_path_matches_point_set_path_exactly() {
        // Both adapters feed the same fused core with identical norms, so
        // given the same seed they must draw identical centers.
        let points = three_clusters();
        let block = crate::block::PointBlock::from_point_set(&points);
        let a = kmeanspp(&points, 4, &mut ChaCha8Rng::seed_from_u64(21)).unwrap();
        let b = kmeanspp_block(&block, 4, &mut ChaCha8Rng::seed_from_u64(21)).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn block_path_rejects_invalid_inputs() {
        let block = crate::block::PointBlock::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(kmeanspp_block(&block, 3, &mut rng).is_err());
        let filled = crate::block::PointBlock::from_point_set(&three_clusters());
        assert!(kmeanspp_block(&filled, 0, &mut rng).is_err());
    }
}
