//! k-median clustering support (extension).
//!
//! The paper's conclusion points out that the coreset-caching framework
//! "may be applicable to other streaming algorithms built around the
//! Bentley–Saxe decomposition — for instance, applying it to streaming
//! k-median seems natural." This module provides the batch substrate for
//! that extension: the k-median objective (sum of *distances* rather than
//! squared distances), D-sampling seeding (the k-median analogue of
//! k-means++), and a Weiszfeld-based refinement step (the k-median analogue
//! of Lloyd's algorithm). The streaming side lives in
//! `skm_stream::kmedian_stream`.

use crate::centers::Centers;
use crate::distance::{distance, nearest_center, squared_distance};
use crate::error::{ClusteringError, Result};
use crate::point::PointSet;
use crate::sampling::{uniform_index, weighted_index};
use rand::Rng;

/// Weighted k-median cost: `Σ_x w(x) · D(x, Ψ)` (note: distance, not
/// squared distance).
///
/// # Errors
/// Returns an error when `centers` is empty (and `points` is not) or the
/// dimensions disagree.
pub fn kmedian_cost(points: &PointSet, centers: &Centers) -> Result<f64> {
    if points.is_empty() {
        return Ok(0.0);
    }
    if centers.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if points.dim() != centers.dim() {
        return Err(ClusteringError::DimensionMismatch {
            expected: points.dim(),
            got: centers.dim(),
        });
    }
    let mut cost = 0.0;
    for (p, w) in points.iter() {
        let (_, d2) = nearest_center(p, centers).expect("non-empty centers");
        cost += w * d2.sqrt();
    }
    Ok(cost)
}

/// D-sampling seeding for k-median: like k-means++, but the next center is
/// chosen with probability proportional to `w(x) · D(x, Ψ)` (first power).
///
/// # Errors
/// Same failure modes as [`crate::kmeanspp::kmeanspp`].
pub fn kmedianpp<R: Rng + ?Sized>(points: &PointSet, k: usize, rng: &mut R) -> Result<Centers> {
    if k == 0 {
        return Err(ClusteringError::InvalidK { k });
    }
    if points.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let n = points.len();
    let dim = points.dim();
    let k_eff = k.min(n);
    let mut centers = Centers::with_capacity(dim, k_eff);

    let first = weighted_index(points.weights(), rng)
        .or_else(|| uniform_index(n, rng))
        .expect("non-empty point set");
    centers.push(points.point(first), points.weight(first));

    let mut dist: Vec<f64> = points
        .iter()
        .map(|(p, w)| w * distance(p, centers.center(0)))
        .collect();

    while centers.len() < k_eff {
        let chosen = match weighted_index(&dist, rng) {
            Some(i) => i,
            None => uniform_index(n, rng).expect("non-empty point set"),
        };
        centers.push(points.point(chosen), points.weight(chosen));
        let new_idx = centers.len() - 1;
        for (i, (p, w)) in points.iter().enumerate() {
            let d = w * distance(p, centers.center(new_idx));
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }
    Ok(centers)
}

/// One pass of alternating refinement for k-median: assign every point to
/// its nearest center, then move each center to (an approximation of) the
/// **geometric median** of its cluster using `weiszfeld_iterations` steps of
/// Weiszfeld's algorithm. Empty clusters are reseeded at the point farthest
/// from its center.
///
/// Returns the refined centers and their k-median cost.
///
/// # Errors
/// Returns an error for empty inputs or dimension mismatches.
pub fn kmedian_refine(
    points: &PointSet,
    initial: &Centers,
    rounds: usize,
    weiszfeld_iterations: usize,
) -> Result<(Centers, f64)> {
    if points.is_empty() || initial.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    if points.dim() != initial.dim() {
        return Err(ClusteringError::DimensionMismatch {
            expected: points.dim(),
            got: initial.dim(),
        });
    }
    let dim = points.dim();
    let k = initial.len();
    let mut centers = initial.clone();

    for _ in 0..rounds {
        // Assignment.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut worst_point = 0usize;
        let mut worst_contrib = -1.0f64;
        for (i, (p, w)) in points.iter().enumerate() {
            let (idx, d2) = nearest_center(p, &centers).expect("non-empty centers");
            members[idx].push(i);
            let contrib = w * d2.sqrt();
            if contrib > worst_contrib {
                worst_contrib = contrib;
                worst_point = i;
            }
        }
        // Update: geometric median per cluster.
        for (j, cluster) in members.iter().enumerate() {
            if cluster.is_empty() {
                centers
                    .center_mut(j)
                    .copy_from_slice(points.point(worst_point));
                *centers.weight_mut(j) = points.weight(worst_point);
                continue;
            }
            let median = geometric_median(points, cluster, weiszfeld_iterations);
            centers.center_mut(j).copy_from_slice(&median);
            *centers.weight_mut(j) = cluster.iter().map(|&i| points.weight(i)).sum();
            let _ = dim;
        }
    }
    let cost = kmedian_cost(points, &centers)?;
    Ok((centers, cost))
}

/// Approximates the weighted geometric median of the selected points with
/// Weiszfeld's iterative algorithm, starting from the weighted centroid.
#[must_use]
pub fn geometric_median(points: &PointSet, indices: &[usize], iterations: usize) -> Vec<f64> {
    let dim = points.dim();
    // Start from the weighted centroid.
    let mut estimate = vec![0.0; dim];
    let mut mass = 0.0;
    for &i in indices {
        let w = points.weight(i);
        mass += w;
        for (e, x) in estimate.iter_mut().zip(points.point(i)) {
            *e += w * x;
        }
    }
    if mass <= 0.0 || indices.is_empty() {
        return estimate;
    }
    for e in &mut estimate {
        *e /= mass;
    }

    let mut next = vec![0.0; dim];
    for _ in 0..iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        let mut denom = 0.0;
        let mut coincident = false;
        for &i in indices {
            let p = points.point(i);
            let d = squared_distance(p, &estimate).sqrt();
            if d < 1e-12 {
                // Weiszfeld is undefined at a data point; the data point is
                // an acceptable (1+ε)-approximate answer here.
                coincident = true;
                break;
            }
            let w = points.weight(i) / d;
            denom += w;
            for (nj, xj) in next.iter_mut().zip(p) {
                *nj += w * xj;
            }
        }
        if coincident || denom <= 0.0 {
            break;
        }
        for (e, nj) in estimate.iter_mut().zip(&next) {
            *e = nj / denom;
        }
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_points(values: &[f64]) -> PointSet {
        let mut s = PointSet::new(1);
        for &v in values {
            s.push(&[v], 1.0);
        }
        s
    }

    #[test]
    fn kmedian_cost_uses_plain_distance() {
        let points = line_points(&[0.0, 3.0]);
        let centers = Centers::from_rows(1, &[vec![0.0]]).unwrap();
        assert!((kmedian_cost(&points, &centers).unwrap() - 3.0).abs() < 1e-12);
        // k-means cost of the same configuration would be 9.
    }

    #[test]
    fn kmedian_cost_errors_mirror_kmeans() {
        let points = line_points(&[1.0]);
        assert!(kmedian_cost(&points, &Centers::new(1)).is_err());
        let wrong_dim = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        assert!(kmedian_cost(&points, &wrong_dim).is_err());
        assert_eq!(kmedian_cost(&PointSet::new(1), &wrong_dim).unwrap(), 0.0);
    }

    #[test]
    fn geometric_median_is_robust_to_an_outlier() {
        // Median of {0, 1, 2, 100} on a line is ~1.0-ish, far from the mean (25.75).
        let points = line_points(&[0.0, 1.0, 2.0, 100.0]);
        let idx: Vec<usize> = (0..4).collect();
        let median = geometric_median(&points, &idx, 200);
        assert!(
            median[0] < 5.0,
            "geometric median {} dragged by outlier",
            median[0]
        );
        let mean = points.centroid().unwrap()[0];
        assert!(mean > 20.0);
    }

    #[test]
    fn kmedianpp_seeds_separated_clusters() {
        let mut points = PointSet::new(1);
        for i in 0..30 {
            points.push(&[f64::from(i) * 0.01], 1.0);
            points.push(&[500.0 + f64::from(i) * 0.01], 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let centers = kmedianpp(&points, 2, &mut rng).unwrap();
        assert_eq!(centers.len(), 2);
        let mut xs: Vec<f64> = centers.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!(xs[0] < 10.0);
        assert!(xs[1] > 490.0);
    }

    #[test]
    fn kmedianpp_rejects_bad_inputs() {
        let points = line_points(&[1.0, 2.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(kmedianpp(&points, 0, &mut rng).is_err());
        assert!(kmedianpp(&PointSet::new(1), 2, &mut rng).is_err());
    }

    #[test]
    fn refinement_reduces_cost() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut points = PointSet::new(2);
        use rand::Rng;
        for i in 0..200 {
            let (ax, ay) = if i % 2 == 0 { (0.0, 0.0) } else { (30.0, 30.0) };
            points.push(&[ax + rng.gen::<f64>(), ay + rng.gen::<f64>()], 1.0);
        }
        let seeded = kmedianpp(&points, 2, &mut rng).unwrap();
        let initial_cost = kmedian_cost(&points, &seeded).unwrap();
        let (refined, refined_cost) = kmedian_refine(&points, &seeded, 5, 30).unwrap();
        assert_eq!(refined.len(), 2);
        assert!(refined_cost <= initial_cost + 1e-9);
    }

    #[test]
    fn refinement_handles_empty_cluster() {
        let points = line_points(&[0.0, 1.0, 2.0]);
        let initial = Centers::from_rows(1, &[vec![1.0], vec![1e9]]).unwrap();
        let (refined, cost) = kmedian_refine(&points, &initial, 3, 10).unwrap();
        assert_eq!(refined.len(), 2);
        assert!(cost.is_finite());
        for c in refined.iter() {
            assert!(c[0] <= 3.0, "center escaped the data range: {}", c[0]);
        }
    }
}
