//! Cluster center sets.
//!
//! A [`Centers`] value is the answer to a clustering query: the set `Ψ` of
//! `k` points that the k-means objective `φ_Ψ(P)` is evaluated against.

use crate::error::{ClusteringError, Result};
use serde::{Deserialize, Serialize};

/// A set of cluster centers in `R^d` with flat row-major storage.
///
/// Unlike [`crate::PointSet`], centers carry an optional per-center weight
/// (the total weight of the points assigned to the center). The sequential
/// k-means algorithm (MacQueen) needs those weights to compute running
/// centroids; batch algorithms may ignore them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Centers {
    dim: usize,
    data: Vec<f64>,
    weights: Vec<f64>,
}

impl Centers {
    /// Creates an empty center set of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "center dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates an empty center set with capacity for `k` centers.
    #[must_use]
    pub fn with_capacity(dim: usize, k: usize) -> Self {
        assert!(dim > 0, "center dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * k),
            weights: Vec::with_capacity(k),
        }
    }

    /// Builds a center set from explicit rows (unit weights).
    ///
    /// # Errors
    /// Returns an error if any row has the wrong dimension.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Result<Self> {
        let mut c = Self::with_capacity(dim, rows.len());
        for r in rows {
            c.try_push(r, 1.0)?;
        }
        Ok(c)
    }

    /// Dimension of the centers.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of centers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when there are no centers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Appends a center.
    ///
    /// # Panics
    /// Panics if the dimension does not match.
    pub fn push(&mut self, center: &[f64], weight: f64) {
        self.try_push(center, weight)
            .expect("center dimension invalid");
    }

    /// Appends a center, reporting a dimension mismatch as an error.
    ///
    /// # Errors
    /// Returns [`ClusteringError::DimensionMismatch`] on shape mismatch.
    pub fn try_push(&mut self, center: &[f64], weight: f64) -> Result<()> {
        if center.len() != self.dim {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.dim,
                got: center.len(),
            });
        }
        self.data.extend_from_slice(center);
        self.weights.push(weight);
        Ok(())
    }

    /// Coordinates of center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn center(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable coordinates of center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn center_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Weight (assigned mass) of center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Mutable weight of center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn weight_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.weights[i]
    }

    /// Iterator over center coordinate slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Raw row-major coordinate storage.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.data
    }

    /// Converts the centers to a vector of owned rows (handy in examples and
    /// tests, not used on hot paths).
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut c = Centers::new(3);
        c.push(&[1.0, 2.0, 3.0], 5.0);
        c.push(&[4.0, 5.0, 6.0], 1.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.center(1), &[4.0, 5.0, 6.0]);
        assert_eq!(c.weight(0), 5.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let c = Centers::from_rows(2, &rows).unwrap();
        assert_eq!(c.to_rows(), rows);
    }

    #[test]
    fn from_rows_rejects_bad_dim() {
        assert!(Centers::from_rows(2, &[vec![1.0, 2.0, 3.0]]).is_err());
    }

    #[test]
    fn center_mut_updates_in_place() {
        let mut c = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        c.center_mut(0)[1] = 9.0;
        assert_eq!(c.center(0), &[0.0, 9.0]);
    }

    #[test]
    fn weight_mut_updates_in_place() {
        let mut c = Centers::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        *c.weight_mut(0) += 3.0;
        assert_eq!(c.weight(0), 4.0);
    }

    #[test]
    fn iter_yields_all_centers() {
        let c = Centers::from_rows(1, &[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let collected: Vec<f64> = c.iter().map(|r| r[0]).collect();
        assert_eq!(collected, vec![1.0, 2.0, 3.0]);
    }
}
