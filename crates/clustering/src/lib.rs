//! # skm-clustering
//!
//! Batch clustering substrate for the *Streaming k-Means Clustering with Fast
//! Queries* reproduction (Zhang, Tangwongsan, Tirthapura — ICDE 2017).
//!
//! This crate contains everything the streaming algorithms need from the
//! "batch world":
//!
//! * [`PointSet`] — a weighted, dense, flat-storage point set in `R^d`
//!   (Problem 1 of the paper works on weighted points).
//! * [`PointBlock`] / [`BlockView`] — the hot-path structure-of-arrays form
//!   with cached squared norms that feeds the fused distance kernels.
//! * [`Centers`] — a set of `k` cluster centers.
//! * [`distance`] — squared-Euclidean kernels (legacy and fused) and
//!   nearest-center search.
//! * [`cost`] — the k-means objective `φ_Ψ(P)` (weighted SSQ) and point
//!   assignments.
//! * [`kmeanspp`] — the weighted k-means++ seeding algorithm (Theorem 1).
//! * [`lloyd`] — weighted Lloyd iterations used to polish centers.
//! * [`kmeans`] — the "best of R runs of k-means++ followed by Lloyd"
//!   procedure used by the paper's evaluation (Section 5.2).
//! * [`sampling`] — weighted sampling utilities shared by k-means++ and the
//!   coreset constructors.
//!
//! All randomized routines take an explicit [`rand::Rng`] so results are
//! reproducible given a seed.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use skm_clustering::{PointSet, kmeans::KMeans};
//!
//! let mut points = PointSet::new(2);
//! for i in 0..50 {
//!     let x = f64::from(i % 5);
//!     let y = f64::from(i / 5);
//!     points.push(&[x, y], 1.0);
//! }
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let result = KMeans::new(3).with_runs(2).fit(&points, &mut rng).unwrap();
//! assert_eq!(result.centers.len(), 3);
//! assert!(result.cost.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod block;
pub mod centers;
pub mod cost;
pub mod distance;
pub mod error;
pub mod kmeans;
pub mod kmeanspp;
pub mod kmedian;
pub mod lloyd;
pub mod point;
pub mod sampling;

pub use block::{BlockView, PointBlock};
pub use centers::Centers;
pub use error::{ClusteringError, Result};
pub use kmeans::{KMeans, KMeansResult};
pub use point::PointSet;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::block::{BlockView, PointBlock};
    pub use crate::centers::Centers;
    pub use crate::cost::{assign, kmeans_cost};
    pub use crate::error::{ClusteringError, Result};
    pub use crate::kmeans::{KMeans, KMeansResult};
    pub use crate::kmeanspp::kmeanspp;
    pub use crate::lloyd::{lloyd, LloydOutcome};
    pub use crate::point::PointSet;
}
