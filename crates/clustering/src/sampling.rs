//! Weighted sampling utilities.
//!
//! k-means++ seeding and the coreset constructors both repeatedly draw
//! indices with probability proportional to a weight vector (D² sampling,
//! sensitivity sampling). These helpers centralize that logic so both use
//! identical, well-tested code.

use rand::Rng;

/// Draws one index from `0..weights.len()` with probability proportional to
/// `weights[i]`.
///
/// Negative, NaN and infinite weights are treated as zero. Returns `None`
/// when the weight vector is empty or sums to zero, in which case callers
/// typically fall back to uniform sampling via [`uniform_index`].
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f64 = weights
        .iter()
        .copied()
        .filter(|w| w.is_finite() && *w > 0.0)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    let mut last_valid = None;
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        last_valid = Some(i);
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating point rounding can exhaust the loop; return the last index
    // with positive weight.
    last_valid
}

/// Draws a uniformly random index from `0..n`, or `None` when `n == 0`.
pub fn uniform_index<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Option<usize> {
    if n == 0 {
        None
    } else {
        Some(rng.gen_range(0..n))
    }
}

/// Draws `count` indices with probability proportional to `weights`
/// **with replacement**. Returns an empty vector when all weights are zero.
pub fn weighted_indices_with_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    count: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match weighted_index(weights, rng) {
            Some(i) => out.push(i),
            None => break,
        }
    }
    out
}

/// Cumulative sums of `weights` (prefix sums), useful for repeated binary
/// search sampling when the weight vector does not change.
#[must_use]
pub fn cumulative_sums(weights: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        acc += w;
        out.push(acc);
    }
    out
}

/// Samples an index using a precomputed cumulative-sum vector (binary
/// search). Returns `None` if the total mass is zero.
pub fn sample_from_cumulative<R: Rng + ?Sized>(cumulative: &[f64], rng: &mut R) -> Option<usize> {
    let total = *cumulative.last()?;
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen::<f64>() * total;
    // partition_point returns the first index whose cumulative sum exceeds
    // the target.
    let idx = cumulative.partition_point(|&c| c <= target);
    Some(idx.min(cumulative.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weighted_index_empty_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(weighted_index(&[], &mut rng).is_none());
    }

    #[test]
    fn weighted_index_all_zero_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(weighted_index(&[0.0, 0.0], &mut rng).is_none());
    }

    #[test]
    fn weighted_index_skips_invalid_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let idx = weighted_index(&[0.0, f64::NAN, 3.0, -2.0], &mut rng).unwrap();
            assert_eq!(idx, 2);
        }
    }

    #[test]
    fn weighted_index_respects_proportions() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        let trials = 20_000;
        for _ in 0..trials {
            counts[weighted_index(&weights, &mut rng).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.02, "observed fraction {frac}");
    }

    #[test]
    fn uniform_index_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(uniform_index(0, &mut rng).is_none());
        for _ in 0..100 {
            let i = uniform_index(5, &mut rng).unwrap();
            assert!(i < 5);
        }
    }

    #[test]
    fn with_replacement_returns_requested_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let idx = weighted_indices_with_replacement(&[1.0, 1.0, 1.0], 10, &mut rng);
        assert_eq!(idx.len(), 10);
        assert!(idx.iter().all(|&i| i < 3));
    }

    #[test]
    fn cumulative_sums_monotone() {
        let c = cumulative_sums(&[1.0, 0.0, 2.0, -5.0, 3.0]);
        assert_eq!(c, vec![1.0, 1.0, 3.0, 3.0, 6.0]);
    }

    #[test]
    fn sample_from_cumulative_matches_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let c = cumulative_sums(&[1.0, 0.0, 1.0]);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_from_cumulative(&c, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac = counts[0] as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03);
    }

    #[test]
    fn sample_from_cumulative_zero_mass_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let c = cumulative_sums(&[0.0, 0.0]);
        assert!(sample_from_cumulative(&c, &mut rng).is_none());
        assert!(sample_from_cumulative(&[], &mut rng).is_none());
    }
}
