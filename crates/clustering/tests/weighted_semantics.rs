//! Cross-module tests of the weighted-point semantics that the coreset
//! machinery relies on: a point with weight `w` must behave exactly like
//! `w` unit-weight copies of that point, for the cost function, Lloyd's
//! algorithm and the batch k-means pipeline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::{assign, kmeans_cost};
use skm_clustering::kmeans::KMeans;
use skm_clustering::lloyd::{lloyd, LloydConfig};
use skm_clustering::{Centers, PointSet};

/// Builds the same logical multiset twice: once with integer weights and
/// once with explicit duplicates.
fn weighted_and_duplicated() -> (PointSet, PointSet) {
    let raw: Vec<(Vec<f64>, usize)> = vec![
        (vec![0.0, 0.0], 3),
        (vec![1.0, 0.5], 1),
        (vec![10.0, 10.0], 4),
        (vec![11.0, 9.5], 2),
        (vec![-5.0, 2.0], 1),
    ];
    let mut weighted = PointSet::new(2);
    let mut duplicated = PointSet::new(2);
    for (p, copies) in &raw {
        weighted.push(p, *copies as f64);
        for _ in 0..*copies {
            duplicated.push(p, 1.0);
        }
    }
    (weighted, duplicated)
}

#[test]
fn cost_of_weighted_set_equals_cost_of_duplicated_set() {
    let (weighted, duplicated) = weighted_and_duplicated();
    let centers = Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
    let cw = kmeans_cost(&weighted, &centers).unwrap();
    let cd = kmeans_cost(&duplicated, &centers).unwrap();
    assert!((cw - cd).abs() < 1e-9, "weighted {cw} vs duplicated {cd}");
}

#[test]
fn assignment_masses_match_duplicated_counts() {
    let (weighted, duplicated) = weighted_and_duplicated();
    let centers = Centers::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
    let aw = assign(&weighted, &centers).unwrap();
    let ad = assign(&duplicated, &centers).unwrap();
    assert_eq!(aw.cluster_weights.len(), ad.cluster_weights.len());
    for (w, d) in aw.cluster_weights.iter().zip(&ad.cluster_weights) {
        assert!((w - d).abs() < 1e-9);
    }
}

#[test]
fn lloyd_produces_identical_centers_on_both_representations() {
    let (weighted, duplicated) = weighted_and_duplicated();
    let init = Centers::from_rows(2, &[vec![1.0, 1.0], vec![8.0, 8.0]]).unwrap();
    let config = LloydConfig {
        max_iterations: 10,
        tolerance: 0.0,
    };
    let out_w = lloyd(&weighted, &init, config).unwrap();
    let out_d = lloyd(&duplicated, &init, config).unwrap();
    assert!((out_w.cost - out_d.cost).abs() < 1e-9);
    for (cw, cd) in out_w.centers.iter().zip(out_d.centers.iter()) {
        for (a, b) in cw.iter().zip(cd) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn lloyd_cost_never_increases_with_more_iterations() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    use rand::Rng;
    let mut points = PointSet::new(3);
    for _ in 0..400 {
        points.push(
            &[
                rng.gen::<f64>() * 10.0,
                rng.gen::<f64>() * 10.0,
                rng.gen::<f64>() * 10.0,
            ],
            1.0 + rng.gen::<f64>(),
        );
    }
    let init = skm_clustering::kmeanspp::kmeanspp(&points, 4, &mut rng).unwrap();
    let mut previous = f64::INFINITY;
    for iterations in [1usize, 2, 4, 8, 16] {
        let out = lloyd(
            &points,
            &init,
            LloydConfig {
                max_iterations: iterations,
                tolerance: 0.0,
            },
        )
        .unwrap();
        assert!(
            out.cost <= previous + 1e-9,
            "cost increased from {previous} to {} at {iterations} iterations",
            out.cost
        );
        previous = out.cost;
    }
}

#[test]
fn batch_kmeans_handles_extreme_weights() {
    // One point carries 10^9 of the mass: the best single center must sit on
    // top of it.
    let mut points = PointSet::new(1);
    points.push(&[0.0], 1.0);
    points.push(&[1.0], 1.0);
    points.push(&[100.0], 1e9);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let result = KMeans::new(1).with_runs(3).fit(&points, &mut rng).unwrap();
    assert!((result.centers.center(0)[0] - 100.0).abs() < 1e-3);
}

#[test]
fn zero_weight_points_do_not_affect_the_result() {
    let mut with_zero = PointSet::new(1);
    with_zero.push(&[0.0], 1.0);
    with_zero.push(&[2.0], 1.0);
    with_zero.push(&[1_000.0], 0.0); // irrelevant
    let centers = Centers::from_rows(1, &[vec![1.0]]).unwrap();
    let cost = kmeans_cost(&with_zero, &centers).unwrap();
    assert!((cost - 2.0).abs() < 1e-12);
    let assignment = assign(&with_zero, &centers).unwrap();
    assert!((assignment.cluster_weights[0] - 2.0).abs() < 1e-12);
}
