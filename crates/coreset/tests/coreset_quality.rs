//! Statistical checks of the coreset property (Definition 1): for many
//! candidate center sets Ψ — good, bad, and random — the cost evaluated on
//! the coreset must track the cost evaluated on the full data within a
//! modest relative error, for both constructions and across merge levels.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::kmeanspp::kmeanspp;
use skm_clustering::{Centers, PointSet};
use skm_coreset::construct::{CoresetBuilder, CoresetMethod};
use skm_coreset::merge::merge_coresets;
use skm_coreset::{Coreset, Span};

fn clustered_data(n: usize, seed: u64) -> PointSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let anchors = [
        [0.0, 0.0, 0.0],
        [25.0, 0.0, 5.0],
        [0.0, 25.0, -5.0],
        [25.0, 25.0, 0.0],
        [12.0, 12.0, 20.0],
    ];
    let mut points = PointSet::new(3);
    for i in 0..n {
        let a = anchors[i % anchors.len()];
        points.push(
            &[
                a[0] + rng.gen::<f64>() * 2.0,
                a[1] + rng.gen::<f64>() * 2.0,
                a[2] + rng.gen::<f64>() * 2.0,
            ],
            1.0,
        );
    }
    points
}

/// A pool of candidate center sets of varying quality.
fn candidate_centers(points: &PointSet, rng: &mut ChaCha8Rng) -> Vec<Centers> {
    let mut out = Vec::new();
    // Good candidates: k-means++ seedings for several k.
    for k in [2usize, 5, 8] {
        out.push(kmeanspp(points, k, rng).unwrap());
    }
    // Bad candidate: a single far-away center.
    out.push(Centers::from_rows(3, &[vec![500.0, 500.0, 500.0]]).unwrap());
    // Random candidates inside the bounding box.
    let (lo, hi) = points.bounding_box().unwrap();
    for _ in 0..3 {
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..3)
                    .map(|d| lo[d] + rng.gen::<f64>() * (hi[d] - lo[d]))
                    .collect()
            })
            .collect();
        out.push(Centers::from_rows(3, &rows).unwrap());
    }
    out
}

fn max_relative_error(points: &PointSet, summary: &PointSet, candidates: &[Centers]) -> f64 {
    let mut worst: f64 = 0.0;
    for centers in candidates {
        let full = kmeans_cost(points, centers).unwrap();
        let approx = kmeans_cost(summary, centers).unwrap();
        if full > 0.0 {
            worst = worst.max((full - approx).abs() / full);
        }
    }
    worst
}

#[test]
fn single_level_coresets_track_costs_for_many_center_sets() {
    let points = clustered_data(4_000, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let candidates = candidate_centers(&points, &mut rng);
    for method in [CoresetMethod::KMeansPP, CoresetMethod::SensitivitySampling] {
        let builder = CoresetBuilder::new(5).with_size(400).with_method(method);
        let coreset = builder
            .build(&points, Span::single(1), 1, &mut rng)
            .unwrap();
        let err = max_relative_error(&points, coreset.points(), &candidates);
        assert!(
            err < 0.30,
            "{method:?}: worst relative cost error {err:.3} across {} center sets",
            candidates.len()
        );
    }
}

#[test]
fn merged_coresets_degrade_gracefully_with_level() {
    // Build a two-level merge (4 buckets -> 2 merges -> 1 merge) and verify
    // the final summary still approximates costs reasonably (Lemma 1 allows
    // the error to compound multiplicatively with the level).
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let builder = CoresetBuilder::new(5).with_size(300);

    let full = clustered_data(8_000, 5);
    let chunks = full.chunks(2_000);
    assert_eq!(chunks.len(), 4);
    let leaves: Vec<Coreset> = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            builder
                .build(chunk, Span::single(i as u64 + 1), 0, &mut rng)
                .unwrap()
        })
        .collect();
    let left = merge_coresets(&leaves[0..2], &builder, &mut rng).unwrap();
    let right = merge_coresets(&leaves[2..4], &builder, &mut rng).unwrap();
    assert_eq!(left.level(), 1);
    assert_eq!(right.level(), 1);
    let root = merge_coresets(&[left, right], &builder, &mut rng).unwrap();
    assert_eq!(root.level(), 2);
    assert_eq!(root.span(), Span::new(1, 4));

    let candidates = candidate_centers(&full, &mut rng);
    let err = max_relative_error(&full, root.points(), &candidates);
    assert!(err < 0.45, "level-2 coreset relative error {err:.3}");
    // Total mass is preserved through both merge generations.
    assert!((root.total_weight() - full.total_weight()).abs() < 1e-6);
}

#[test]
fn coreset_of_coreset_is_smaller_but_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let points = clustered_data(3_000, 9);
    let big = CoresetBuilder::new(5)
        .with_size(600)
        .build(&points, Span::single(1), 1, &mut rng)
        .unwrap();
    let small = CoresetBuilder::new(5)
        .with_size(120)
        .build(big.points(), Span::single(1), 2, &mut rng)
        .unwrap();
    assert!(small.len() <= 120);
    assert!((small.total_weight() - points.total_weight()).abs() < 1e-6);
    let candidates = candidate_centers(&points, &mut rng);
    let err = max_relative_error(&points, small.points(), &candidates);
    assert!(err < 0.5, "double-compressed coreset error {err:.3}");
}
