//! The [`Coreset`] type: a weighted summary of a span of base buckets.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use skm_clustering::PointSet;

/// A weighted point set summarizing the base buckets in `span`, together
/// with its coreset *level* (Definition 2 of the paper).
///
/// * A **level-0** coreset of `P` is `P` itself — base buckets are level 0.
/// * A **level-ℓ** coreset is produced by running the coreset construction
///   on a union of coresets of level `< ℓ` (at least one of which has level
///   `ℓ − 1`).
///
/// Lemma 1 relates the level to the accuracy: a level-ℓ coreset built with
/// per-merge parameter `ε` is a `((1 + ε)^ℓ − 1)`-coreset of the original
/// points. The streaming algorithms therefore track levels explicitly, and
/// the tests verify the level bounds of Fact 1 (CT) and Lemma 5 (CC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Coreset {
    points: PointSet,
    span: Span,
    level: u32,
}

impl Coreset {
    /// Wraps a raw base bucket (level 0) covering base bucket `bucket`.
    #[must_use]
    pub fn base_bucket(points: PointSet, bucket: u64) -> Self {
        Self {
            points,
            span: Span::single(bucket),
            level: 0,
        }
    }

    /// Creates a coreset with an explicit span and level. Used by the
    /// constructors in [`crate::construct`] and [`crate::merge`].
    #[must_use]
    pub fn with_parts(points: PointSet, span: Span, level: u32) -> Self {
        Self {
            points,
            span,
            level,
        }
    }

    /// The summarized weighted points.
    #[must_use]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Consumes the coreset and returns the underlying point set.
    #[must_use]
    pub fn into_points(self) -> PointSet {
        self.points
    }

    /// The span `[l, r]` of base buckets this coreset summarizes.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }

    /// The coreset level (Definition 2).
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The right endpoint `r` of the span — the key the coreset cache uses.
    #[must_use]
    pub fn right_endpoint(&self) -> u64 {
        self.span.end()
    }

    /// Number of stored (weighted) points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the summary holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight carried by the summary. For an exact construction this
    /// equals the total weight of the summarized input.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.points.total_weight()
    }

    /// Memory used by the stored coordinates, in bytes (8 bytes per
    /// dimension per point), matching the paper's Table 4 accounting.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.points.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_points() -> PointSet {
        let mut s = PointSet::new(2);
        s.push(&[0.0, 0.0], 1.0);
        s.push(&[1.0, 1.0], 2.0);
        s
    }

    #[test]
    fn base_bucket_has_level_zero() {
        let c = Coreset::base_bucket(small_points(), 5);
        assert_eq!(c.level(), 0);
        assert_eq!(c.span(), Span::single(5));
        assert_eq!(c.right_endpoint(), 5);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn with_parts_preserves_metadata() {
        let c = Coreset::with_parts(small_points(), Span::new(3, 8), 4);
        assert_eq!(c.level(), 4);
        assert_eq!(c.span().len(), 6);
        assert_eq!(c.right_endpoint(), 8);
    }

    #[test]
    fn total_weight_and_memory() {
        let c = Coreset::base_bucket(small_points(), 1);
        assert!((c.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(c.memory_bytes(), 2 * 2 * 8);
    }

    #[test]
    fn into_points_round_trips() {
        let c = Coreset::base_bucket(small_points(), 1);
        let p = c.into_points();
        assert_eq!(p.len(), 2);
    }
}
