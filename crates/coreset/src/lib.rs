//! # skm-coreset
//!
//! k-means coresets for the *Streaming k-Means Clustering with Fast Queries*
//! reproduction.
//!
//! A `(k, ε)`-coreset of a weighted point set `P` (Definition 1 of the
//! paper) is a small weighted set `C` such that for every candidate center
//! set `Ψ` of size `k`,
//! `(1 − ε)·φ_Ψ(P) ≤ φ_Ψ(C) ≤ (1 + ε)·φ_Ψ(P)`.
//!
//! This crate provides:
//!
//! * [`Coreset`] — a weighted summary annotated with the **span** of base
//!   buckets it covers and its **level** (Definition 2), which the streaming
//!   algorithms use to reason about accuracy (Lemma 1, Lemma 5).
//! * [`Span`] — the inclusive bucket interval `[l, r]` summarized by a
//!   coreset (the paper indexes the cache by the right endpoint).
//! * [`construct`] — two coreset constructors:
//!   [`construct::CoresetBuilder`] with the k-means++ based construction
//!   used by streamkm++ and the paper's implementation, and a
//!   sensitivity-sampling alternative used for ablation.
//! * [`merge`] — the merge-and-reduce step (Observations 1 and 2): union a
//!   set of coresets and reduce the union back to `m` points, bumping the
//!   level.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod construct;
pub mod coreset;
pub mod merge;
pub mod span;

pub use construct::{CoresetBuilder, CoresetMethod};
pub use coreset::Coreset;
pub use merge::{merge_coresets, union_blocks};
pub use span::Span;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::construct::{CoresetBuilder, CoresetMethod};
    pub use crate::coreset::Coreset;
    pub use crate::merge::{merge_coresets, union_blocks};
    pub use crate::span::Span;
}
