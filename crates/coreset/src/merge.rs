//! Merge-and-reduce: combine several coresets into one.
//!
//! Observation 1 of the paper: the union of `(k, ε)`-coresets of disjoint
//! point sets is a `(k, ε)`-coreset of the union. Observation 2: taking a
//! coreset of a coreset compounds the errors multiplicatively. The streaming
//! algorithms therefore merge coresets by (a) unioning their weighted points
//! and (b) reducing the union back to `m` points with the coreset
//! constructor, which raises the *level* of the result to
//! `1 + max(levels of the inputs)` (Definition 2).

use crate::construct::CoresetBuilder;
use crate::coreset::Coreset;
use crate::span::Span;
use rand::Rng;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::{PointBlock, PointSet};

/// Merges `inputs` (which must cover contiguous, non-overlapping,
/// consecutive spans, in order) into a single coreset of at most
/// `builder.size` points.
///
/// The resulting level is `1 + max(input levels)` as in Definition 2. The
/// resulting span is the union of the input spans.
///
/// # Errors
/// * [`ClusteringError::EmptyInput`] if `inputs` is empty or every input is
///   empty.
/// * [`ClusteringError::InvalidParameter`] if the spans are not contiguous
///   and ordered.
pub fn merge_coresets<R: Rng + ?Sized>(
    inputs: &[Coreset],
    builder: &CoresetBuilder,
    rng: &mut R,
) -> Result<Coreset> {
    if inputs.is_empty() {
        return Err(ClusteringError::EmptyInput);
    }
    let spans: Vec<Span> = inputs.iter().map(Coreset::span).collect();
    let union_span =
        Span::union_contiguous(&spans).ok_or_else(|| ClusteringError::InvalidParameter {
            name: "inputs",
            message: format!("spans are not contiguous and ordered: {spans:?}"),
        })?;

    let dim = inputs[0].points().dim();
    let total_points: usize = inputs.iter().map(Coreset::len).sum();
    if total_points == 0 {
        return Err(ClusteringError::EmptyInput);
    }
    // Union directly into a PointBlock: the norm cache fills while copying,
    // so the reduction below runs entirely on fused kernels without a
    // separate norm pass over the merged points.
    let mut union = PointBlock::with_capacity(dim, total_points);
    for c in inputs {
        union.extend_from_set(c.points())?;
    }

    let level = 1 + inputs.iter().map(Coreset::level).max().unwrap_or(0);
    builder.build_block(&union, union_span, level, rng)
}

/// Unions the points of the given coresets **without** reducing them.
///
/// This is what `CT-Coreset` does at query time (Algorithm 2, line 10): the
/// union of all active buckets is handed directly to k-means++ without an
/// extra reduction step, so no level increase is incurred.
///
/// # Errors
/// Returns an error when `inputs` is empty or dimensions mismatch.
pub fn union_points(inputs: &[&Coreset]) -> Result<PointSet> {
    let first = inputs.first().ok_or(ClusteringError::EmptyInput)?;
    let dim = first.points().dim();
    let total: usize = inputs.iter().map(|c| c.len()).sum();
    let mut out = PointSet::with_capacity(dim, total);
    for c in inputs {
        out.extend_from(c.points())?;
    }
    Ok(out)
}

/// Unions norm-cached point blocks into a single block **without** reducing
/// them, reusing every input's cached squared norms.
///
/// This is the cross-shard counterpart of [`union_points`]: each shard of a
/// sharded stream summarizes a *disjoint* slice of the input (so by
/// Observation 1 the union of the per-shard coresets is a coreset of the
/// whole stream), and the blocks carry the norms their buffers computed at
/// update time, so the union feeds the fused query kernels without an extra
/// norm pass. Empty inputs are skipped.
///
/// # Errors
/// Returns [`ClusteringError::EmptyInput`] when the inputs contain no
/// points at all, and a dimension-mismatch error when non-empty inputs
/// disagree on dimensionality.
pub fn union_blocks(inputs: &[PointBlock]) -> Result<PointBlock> {
    let total: usize = inputs.iter().map(PointBlock::len).sum();
    let first = inputs
        .iter()
        .find(|b| !b.is_empty())
        .ok_or(ClusteringError::EmptyInput)?;
    let mut out = PointBlock::with_capacity(first.dim(), total);
    for block in inputs {
        if !block.is_empty() {
            out.extend_from_block(block)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bucket(value: f64, n: usize, bucket_no: u64) -> Coreset {
        let mut s = PointSet::new(1);
        for i in 0..n {
            s.push(&[value + i as f64 * 0.001], 1.0);
        }
        Coreset::base_bucket(s, bucket_no)
    }

    #[test]
    fn merge_produces_union_span_and_bumped_level() {
        let builder = CoresetBuilder::new(2).with_size(10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = bucket(0.0, 30, 1);
        let b = bucket(100.0, 30, 2);
        let merged = merge_coresets(&[a, b], &builder, &mut rng).unwrap();
        assert_eq!(merged.span(), Span::new(1, 2));
        assert_eq!(merged.level(), 1);
        assert!(merged.len() <= 10);
        assert!((merged.total_weight() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_of_merged_coresets_increments_level_again() {
        let builder = CoresetBuilder::new(2).with_size(10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ab = merge_coresets(
            &[bucket(0.0, 30, 1), bucket(10.0, 30, 2)],
            &builder,
            &mut rng,
        )
        .unwrap();
        let cd = merge_coresets(
            &[bucket(20.0, 30, 3), bucket(30.0, 30, 4)],
            &builder,
            &mut rng,
        )
        .unwrap();
        let all = merge_coresets(&[ab, cd], &builder, &mut rng).unwrap();
        assert_eq!(all.level(), 2);
        assert_eq!(all.span(), Span::new(1, 4));
    }

    #[test]
    fn merge_with_mixed_levels_uses_max_plus_one() {
        let builder = CoresetBuilder::new(2).with_size(10);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ab = merge_coresets(
            &[bucket(0.0, 30, 1), bucket(10.0, 30, 2)],
            &builder,
            &mut rng,
        )
        .unwrap();
        let c = bucket(20.0, 30, 3);
        let merged = merge_coresets(&[ab, c], &builder, &mut rng).unwrap();
        assert_eq!(merged.level(), 2);
        assert_eq!(merged.span(), Span::new(1, 3));
    }

    #[test]
    fn merge_rejects_gap_in_spans() {
        let builder = CoresetBuilder::new(2).with_size(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = bucket(0.0, 5, 1);
        let c = bucket(1.0, 5, 3);
        assert!(merge_coresets(&[a, c], &builder, &mut rng).is_err());
    }

    #[test]
    fn merge_rejects_empty_input_list() {
        let builder = CoresetBuilder::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(merge_coresets(&[], &builder, &mut rng).is_err());
    }

    #[test]
    fn union_points_concatenates() {
        let a = bucket(0.0, 5, 1);
        let b = bucket(1.0, 7, 2);
        let u = union_points(&[&a, &b]).unwrap();
        assert_eq!(u.len(), 12);
        assert!((u.total_weight() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn union_points_empty_is_error() {
        assert!(union_points(&[]).is_err());
    }

    #[test]
    fn union_blocks_concatenates_and_reuses_norms() {
        let a = PointBlock::from_point_set(bucket(3.0, 4, 1).points());
        let b = PointBlock::from_point_set(bucket(5.0, 2, 2).points());
        let empty = PointBlock::new(1);
        let u = union_blocks(&[a.clone(), empty, b.clone()]).unwrap();
        assert_eq!(u.len(), 6);
        assert_eq!(u.norms()[..4], a.norms()[..]);
        assert_eq!(u.norms()[4..], b.norms()[..]);
        assert!((u.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn union_blocks_rejects_empty_and_mismatched_inputs() {
        assert!(union_blocks(&[]).is_err());
        assert!(union_blocks(&[PointBlock::new(2)]).is_err());
        let a = PointBlock::from_point_set(bucket(1.0, 3, 1).points());
        let mut wrong = PointBlock::new(2);
        wrong.push(&[0.0, 0.0], 1.0);
        assert!(union_blocks(&[a, wrong]).is_err());
    }
}
