//! Bucket spans.
//!
//! The stream is divided into *base buckets* of `m` points each, numbered
//! `1, 2, 3, …` in arrival order. Every coreset in the coreset tree and in
//! the cache summarizes a contiguous interval of base buckets; the paper
//! writes this interval `[l, r]` and calls `r` the *right endpoint* (the key
//! used by the coreset cache).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive interval `[start, end]` of base-bucket numbers (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    start: u64,
    end: u64,
}

impl Span {
    /// Creates the span `[start, end]`.
    ///
    /// # Panics
    /// Panics if `start == 0` (buckets are 1-based) or `start > end`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start >= 1, "bucket numbers are 1-based");
        assert!(start <= end, "span start must not exceed end");
        Self { start, end }
    }

    /// The span of a single base bucket `[b, b]`.
    #[must_use]
    pub fn single(bucket: u64) -> Self {
        Self::new(bucket, bucket)
    }

    /// First bucket covered (inclusive).
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Last bucket covered (inclusive) — the *right endpoint* used as the
    /// cache key.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of base buckets covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Spans are never empty, but the method exists for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `self` immediately precedes `other` (so their union is a
    /// contiguous span).
    #[must_use]
    pub fn is_adjacent_before(&self, other: &Span) -> bool {
        self.end + 1 == other.start
    }

    /// Whether the two spans overlap.
    #[must_use]
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The union of a sorted, contiguous, non-overlapping collection of
    /// spans, or `None` if the collection is empty, overlapping or has gaps.
    #[must_use]
    pub fn union_contiguous(spans: &[Span]) -> Option<Span> {
        let first = spans.first()?;
        let mut acc = *first;
        for s in &spans[1..] {
            if !acc.is_adjacent_before(s) {
                return None;
            }
            acc = Span::new(acc.start, s.end);
        }
        Some(acc)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Span::new(3, 7);
        assert_eq!(s.start(), 3);
        assert_eq!(s.end(), 7);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "[3, 7]");
    }

    #[test]
    fn single_bucket_span() {
        let s = Span::single(4);
        assert_eq!(s, Span::new(4, 4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_start_panics() {
        let _ = Span::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 3);
    }

    #[test]
    fn adjacency() {
        assert!(Span::new(1, 4).is_adjacent_before(&Span::new(5, 6)));
        assert!(!Span::new(1, 4).is_adjacent_before(&Span::new(6, 7)));
        assert!(!Span::new(1, 4).is_adjacent_before(&Span::new(4, 7)));
    }

    #[test]
    fn overlap() {
        assert!(Span::new(1, 4).overlaps(&Span::new(4, 9)));
        assert!(Span::new(2, 8).overlaps(&Span::new(3, 4)));
        assert!(!Span::new(1, 4).overlaps(&Span::new(5, 9)));
    }

    #[test]
    fn union_of_contiguous_spans() {
        let spans = [Span::new(1, 4), Span::new(5, 6), Span::new(7, 7)];
        assert_eq!(Span::union_contiguous(&spans), Some(Span::new(1, 7)));
    }

    #[test]
    fn union_rejects_gaps_and_overlaps() {
        assert_eq!(
            Span::union_contiguous(&[Span::new(1, 4), Span::new(6, 7)]),
            None
        );
        assert_eq!(
            Span::union_contiguous(&[Span::new(1, 4), Span::new(4, 7)]),
            None
        );
        assert_eq!(Span::union_contiguous(&[]), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Span::new(1, 5) < Span::new(2, 3));
        assert!(Span::new(2, 3) < Span::new(2, 4));
    }
}
