//! Coreset construction: `coreset(k, ε, P)` of size `m`.
//!
//! The paper (Theorem 2, citing Feldman–Schmidt–Sohler) assumes an oracle
//! that, given `n` weighted points, produces a `(k, ε)`-coreset of size
//! `m = O(k/ε²)` in time `O(dnm)`. The evaluation section (5.2) states that,
//! as in streamkm++, the coresets are actually derived with **k-means++**:
//! sample `m` representatives by D² sampling and move every input point's
//! weight to its nearest representative.
//!
//! This module implements that construction ([`CoresetMethod::KMeansPP`])
//! and a second, *sensitivity sampling* construction
//! ([`CoresetMethod::SensitivitySampling`], Feldman–Langberg style
//! importance sampling) that is used by the ablation benchmark to show the
//! choice of constructor does not change the paper's conclusions.

use crate::coreset::Coreset;
use crate::span::Span;
use rand::Rng;
use serde::{Deserialize, Serialize};
use skm_clustering::cost::assign_block;
use skm_clustering::distance::sq_dist_block;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::kmeanspp::kmeanspp_block;
use skm_clustering::sampling::{cumulative_sums, sample_from_cumulative};
use skm_clustering::{Centers, PointBlock, PointSet};

/// Which coreset construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoresetMethod {
    /// streamkm++ / paper construction: choose `m` representatives by
    /// k-means++ D² sampling; each representative receives the total weight
    /// of the input points assigned to it.
    KMeansPP,
    /// Importance (sensitivity) sampling: sample `m` points with probability
    /// proportional to an upper bound on their sensitivity and reweight by
    /// the inverse sampling probability.
    SensitivitySampling,
}

/// Configuration + entry point for coreset construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoresetBuilder {
    /// Number of clusters the coreset must preserve costs for.
    pub k: usize,
    /// Target coreset size `m` (the paper's *bucket size*, `20·k` by
    /// default).
    pub size: usize,
    /// Construction method.
    pub method: CoresetMethod,
}

impl CoresetBuilder {
    /// Creates a builder with the paper's defaults: size `m = 20·k`, k-means++
    /// construction.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            size: 20 * k,
            method: CoresetMethod::KMeansPP,
        }
    }

    /// Overrides the coreset size `m`.
    #[must_use]
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Overrides the construction method.
    #[must_use]
    pub fn with_method(mut self, method: CoresetMethod) -> Self {
        self.method = method;
        self
    }

    /// Builds a coreset of `points`, labelling it with `span` and `level`.
    ///
    /// If `points` has at most `size` points the summary is exact: the points
    /// are copied verbatim (a 0-error coreset), which mirrors what the
    /// streaming algorithms do with partially filled buckets.
    ///
    /// This is a thin adapter over [`CoresetBuilder::build_block`]: the input
    /// is lifted into a [`PointBlock`] once so the k-means++ D² sampling and
    /// the weight-transfer assignment both run through the fused distance
    /// kernels with a single shared norm cache.
    ///
    /// # Errors
    /// Returns an error if `points` is empty or the builder size is zero.
    pub fn build<R: Rng + ?Sized>(
        &self,
        points: &PointSet,
        span: Span,
        level: u32,
        rng: &mut R,
    ) -> Result<Coreset> {
        if points.is_empty() {
            return Err(ClusteringError::EmptyInput);
        }
        if self.size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "size",
                message: "coreset size must be positive".to_string(),
            });
        }
        if points.len() <= self.size {
            return Ok(Coreset::with_parts(points.clone(), span, level));
        }
        let block = PointBlock::from_point_set(points);
        self.build_block(&block, span, level, rng)
    }

    /// Builds a coreset from a [`PointBlock`], reusing its cached squared
    /// norms for every distance evaluated during construction.
    ///
    /// # Errors
    /// Same failure modes as [`CoresetBuilder::build`].
    pub fn build_block<R: Rng + ?Sized>(
        &self,
        block: &PointBlock,
        span: Span,
        level: u32,
        rng: &mut R,
    ) -> Result<Coreset> {
        if block.is_empty() {
            return Err(ClusteringError::EmptyInput);
        }
        if self.size == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "size",
                message: "coreset size must be positive".to_string(),
            });
        }
        if block.len() <= self.size {
            return Ok(Coreset::with_parts(block.to_point_set(), span, level));
        }
        let summary = match self.method {
            CoresetMethod::KMeansPP => kmeanspp_coreset(block, self.size, rng)?,
            CoresetMethod::SensitivitySampling => {
                sensitivity_coreset(block, self.k, self.size, rng)?
            }
        };
        Ok(Coreset::with_parts(summary, span, level))
    }
}

/// k-means++ based construction: the returned set has exactly
/// `min(size, n)` points and the same total weight as the input.
fn kmeanspp_coreset<R: Rng + ?Sized>(
    block: &PointBlock,
    size: usize,
    rng: &mut R,
) -> Result<PointSet> {
    // Sample `size` representatives by D² sampling. We reuse the k-means++
    // seeding with k = size.
    let representatives: Centers = kmeanspp_block(block, size, rng)?;
    // Assign every input point to its nearest representative and accumulate
    // the weights there.
    let assignment = assign_block(block, &representatives)?;
    let mut out = PointSet::with_capacity(block.dim(), representatives.len());
    for (j, rep) in representatives.iter().enumerate() {
        let w = assignment.cluster_weights[j];
        // Representatives that received no weight are still kept with zero
        // weight? No — dropping them keeps the summary tight and does not
        // change any cost, because zero-weight points contribute nothing.
        if w > 0.0 {
            out.push(rep, w);
        }
    }
    Ok(out)
}

/// Sensitivity-sampling construction (Feldman–Langberg style).
///
/// 1. Compute a rough clustering `B` with k-means++ (`k` centers).
/// 2. For every point, bound its sensitivity by
///    `s(x) = w(x)·d²(x,B)/φ_B(P) + w(x)/W(cluster(x))`.
/// 3. Sample `size` points with probability `p(x) ∝ s(x)` (with
///    replacement) and give each sampled point weight `w(x)/(size·p(x))`.
///
/// The returned summary preserves the total weight only in expectation; a
/// final rescaling step pins the total weight exactly, which empirically
/// improves stability without affecting the guarantee.
fn sensitivity_coreset<R: Rng + ?Sized>(
    points: &PointBlock,
    k: usize,
    size: usize,
    rng: &mut R,
) -> Result<PointSet> {
    let rough = kmeanspp_block(points, k, rng)?;
    let assignment = assign_block(points, &rough)?;
    let total_cost = assignment.cost;
    let total_weight = points.total_weight();

    // Sensitivity upper bounds, via the fused kernel and the cached norms.
    let rough_norms = skm_clustering::distance::squared_norms(rough.coords(), rough.dim());
    let mut sens = Vec::with_capacity(points.len());
    for (i, (p, w, norm)) in points.view().iter().enumerate() {
        let label = assignment.labels[i];
        let cluster_mass = assignment.cluster_weights[label].max(f64::MIN_POSITIVE);
        let d2 = sq_dist_block(p, norm, rough.center(label), rough_norms[label]);
        let cost_term = if total_cost > 0.0 {
            w * d2 / total_cost
        } else {
            0.0
        };
        sens.push(cost_term + w / cluster_mass);
    }
    let sens_total: f64 = sens.iter().sum();
    if sens_total <= 0.0 {
        // Degenerate: all points identical. Fall back to the k-means++
        // construction which handles this case.
        return kmeanspp_coreset(points, size, rng);
    }

    let cumulative = cumulative_sums(&sens);
    let mut out = PointSet::with_capacity(points.dim(), size);
    for _ in 0..size {
        let idx = sample_from_cumulative(&cumulative, rng).expect("positive total sensitivity");
        let p = points.point(idx);
        let prob = sens[idx] / sens_total;
        let weight = points.weight(idx) / (size as f64 * prob);
        out.push(p, weight);
    }
    // Rescale so the summary carries exactly the input mass.
    let out_weight = out.total_weight();
    if out_weight > 0.0 {
        let scale = total_weight / out_weight;
        let mut rescaled = PointSet::with_capacity(out.dim(), out.len());
        for (p, w) in out.iter() {
            rescaled.push(p, w * scale);
        }
        return Ok(rescaled);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use skm_clustering::cost::kmeans_cost;
    use skm_clustering::kmeans::KMeans;

    /// A mixture of 4 Gaussian-ish blobs with 2000 points.
    fn blobs(seed: u64) -> PointSet {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let anchors = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)];
        let mut s = PointSet::new(2);
        for i in 0..2000 {
            let (ax, ay) = anchors[i % 4];
            let x: f64 = ax + rng.gen::<f64>() * 2.0 - 1.0;
            let y: f64 = ay + rng.gen::<f64>() * 2.0 - 1.0;
            s.push(&[x, y], 1.0);
        }
        s
    }

    #[test]
    fn small_inputs_are_copied_exactly() {
        let mut points = PointSet::new(1);
        points.push(&[1.0], 2.0);
        points.push(&[3.0], 4.0);
        let builder = CoresetBuilder::new(2).with_size(10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = builder
            .build(&points, Span::single(1), 0, &mut rng)
            .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.points().point(0), &[1.0]);
        assert!((c.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn kmeanspp_construction_has_requested_size_and_weight() {
        let points = blobs(1);
        let builder = CoresetBuilder::new(4).with_size(80);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = builder
            .build(&points, Span::new(1, 4), 1, &mut rng)
            .unwrap();
        assert!(c.len() <= 80);
        assert!(c.len() >= 4);
        assert!((c.total_weight() - points.total_weight()).abs() < 1e-6);
        assert_eq!(c.level(), 1);
        assert_eq!(c.span(), Span::new(1, 4));
    }

    #[test]
    fn sensitivity_construction_preserves_total_weight() {
        let points = blobs(3);
        let builder = CoresetBuilder::new(4)
            .with_size(80)
            .with_method(CoresetMethod::SensitivitySampling);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let c = builder
            .build(&points, Span::single(1), 1, &mut rng)
            .unwrap();
        assert_eq!(c.len(), 80);
        assert!((c.total_weight() - points.total_weight()).abs() < 1e-6);
    }

    /// The defining property (Definition 1), checked statistically: the cost
    /// of a good clustering evaluated on the coreset should be within a
    /// modest relative error of the cost evaluated on the full data.
    #[test]
    fn coreset_approximates_cost_of_good_clustering() {
        let points = blobs(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let reference = KMeans::new(4).with_runs(3).fit(&points, &mut rng).unwrap();
        for method in [CoresetMethod::KMeansPP, CoresetMethod::SensitivitySampling] {
            let builder = CoresetBuilder::new(4).with_size(200).with_method(method);
            let c = builder
                .build(&points, Span::single(1), 1, &mut rng)
                .unwrap();
            let full_cost = kmeans_cost(&points, &reference.centers).unwrap();
            let coreset_cost = kmeans_cost(c.points(), &reference.centers).unwrap();
            let rel_err = (full_cost - coreset_cost).abs() / full_cost;
            assert!(
                rel_err < 0.35,
                "method {method:?}: relative error too large: {rel_err}"
            );
        }
    }

    #[test]
    fn clustering_the_coreset_is_nearly_as_good_as_clustering_the_data() {
        let points = blobs(7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let builder = CoresetBuilder::new(4).with_size(200);
        let c = builder
            .build(&points, Span::single(1), 1, &mut rng)
            .unwrap();

        let from_coreset = KMeans::new(4)
            .with_runs(3)
            .fit(c.points(), &mut rng)
            .unwrap();
        let from_data = KMeans::new(4).with_runs(3).fit(&points, &mut rng).unwrap();

        let cost_via_coreset = kmeans_cost(&points, &from_coreset.centers).unwrap();
        // Clustering the coreset should cost at most ~2x clustering the data
        // directly (in practice it is nearly identical on separated blobs).
        assert!(
            cost_via_coreset <= 2.0 * from_data.cost + 1e-9,
            "coreset-derived centers cost {cost_via_coreset}, direct {}",
            from_data.cost
        );
    }

    #[test]
    fn empty_input_is_error() {
        let empty = PointSet::new(2);
        let builder = CoresetBuilder::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(builder.build(&empty, Span::single(1), 0, &mut rng).is_err());
    }

    #[test]
    fn zero_size_is_error() {
        let points = blobs(9);
        let builder = CoresetBuilder::new(3).with_size(0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(builder
            .build(&points, Span::single(1), 0, &mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let points = blobs(11);
        let builder = CoresetBuilder::new(4).with_size(50);
        let a = builder
            .build(
                &points,
                Span::single(1),
                1,
                &mut ChaCha8Rng::seed_from_u64(42),
            )
            .unwrap();
        let b = builder
            .build(
                &points,
                Span::single(1),
                1,
                &mut ChaCha8Rng::seed_from_u64(42),
            )
            .unwrap();
        assert_eq!(a.points(), b.points());
    }
}
