//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, since
//! the build environment is offline). Supports exactly the shapes this
//! workspace derives on:
//!
//! * non-generic structs with named fields, and
//! * non-generic enums whose variants are unit or struct-like.
//!
//! Anything else panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Variant {
    Unit { name: String },
    Struct { name: String, fields: Vec<Field> },
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes (`#[...]`) from the token iterator.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: expected attribute body, found {other:?}"),
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => match tokens.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            },
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {}
            }
            tokens.next();
        }
        fields.push(Field { name });
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                variants.push(Variant::Struct { name, fields });
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive: tuple variant `{name}` is not supported by the vendored derive"
                )
            }
            _ => variants.push(Variant::Unit { name }),
        }
        // Consume the trailing comma, if any.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    // Skip visibility (`pub`, `pub(crate)`, ...).
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: only non-generic braced types are supported for `{name}`, found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn struct_fields_to_value(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({a})),",
                n = f.name,
                a = access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.concat())
}

fn struct_fields_from_map(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{n}: ::serde::Deserialize::from_value(::serde::get_field(map, \"{n}\")?)?,",
                n = f.name
            )
        })
        .collect()
}

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = struct_fields_to_value(&fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit { name: vn } => format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    ),
                    Variant::Struct { name: vn, fields } => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = struct_fields_to_value(fields, |f| f.to_string());
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds = bindings.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = struct_fields_from_map(&fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let map = match value {{\n\
                             ::serde::Value::Map(m) => m,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for struct {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit { name: vn } => Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Variant::Struct { .. } => None,
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit { .. } => None,
                    Variant::Struct { name: vn, fields } => {
                        let body = struct_fields_from_map(fields);
                        Some(format!(
                            "\"{vn}\" => {{\n\
                                 let map = match inner {{\n\
                                     ::serde::Value::Map(m) => m,\n\
                                     _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for variant {vn}\")),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {body} }})\n\
                             }}"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\"expected variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde_derive: generated invalid Rust")
}
