//! Vendored minimal criterion-compatible benchmark harness.
//!
//! Offers the subset of the `criterion` API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`Bencher::iter`] — and reports median
//! wall-clock time per iteration on stdout. It intentionally runs far fewer
//! samples than real criterion so `cargo bench` stays quick in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark (clamped to keep runs fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Declares the throughput of each iteration (recorded but unused).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter value.
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts strings and [`BenchmarkId`]).
pub trait IntoBenchmarkLabel {
    /// Renders the label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Declared per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times the closure over this bencher's sample budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let median = median_duration(&mut bencher.samples);
    println!("bench: {label:<50} median {median:>12.3?} ({sample_size} samples)");
}

fn median_duration(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a plain
            // `--test` invocation should not run the full benchmarks.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("id", 1), &2u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn median_of_odd_sample_count() {
        let mut samples = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        assert_eq!(median_duration(&mut samples), Duration::from_nanos(20));
    }
}
