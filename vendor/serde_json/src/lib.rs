//! Vendored minimal `serde_json`: renders the vendored [`serde::Value`]
//! model to JSON text and parses it back. Supports exactly what the
//! workspace round-trips: objects, arrays, strings, numbers, booleans and
//! null, with standard string escapes.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes any [`Serialize`] value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a [`Deserialize`] value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints integral floats without a fractional part
                // ("1"); the parser then yields UInt/Int, which the numeric
                // Deserialize impls accept, so round trips still work.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => {
                self.parse_keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{word}`")))
        }
    }

    fn parse_bool(&mut self) -> Result<Value, Error> {
        if self.peek() == Some(b't') {
            self.parse_keyword("true")?;
            Ok(Value::Bool(true))
        } else {
            self.parse_keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::Int(-v))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::UInt(1), Value::Int(-2), Value::Float(0.5)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
        ]);
        let mut text = String::new();
        write_value(&value, &mut text);
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let back = parser.parse_value().unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn floats_surviving_integral_printing() {
        let x: f64 = from_str(&to_string(&1.0f64).unwrap()).unwrap();
        assert_eq!(x, 1.0);
        let y: f64 = from_str(&to_string(&0.02f64).unwrap()).unwrap();
        assert_eq!(y, 0.02);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
