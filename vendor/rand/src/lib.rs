//! Vendored minimal subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, self-contained implementation of exactly the surface the
//! reproduction uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (including the `rand_core` 0.6 `seed_from_u64` seed
//! expansion, bit-for-bit), the [`distributions::Standard`] samplers and
//! [`seq::SliceRandom::shuffle`]. See `vendor/README.md`.

pub mod distributions;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given half-open or inclusive range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]` for ChaCha.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed and constructs the generator.
    ///
    /// Uses the same PCG32-based expansion as `rand_core` 0.6, so seeds
    /// produce the same generator state as the real crate would.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1_000 {
            let i = rng.gen_range(0..17usize);
            assert!(i < 17);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
