//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as in rand 0.8.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// A range that can be sampled uniformly, e.g. `0..n` or `0.0..1.0`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by widening multiply, avoiding modulo bias for
/// all practical `n` (bias is at most 2^-64 per draw and irrelevant here).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + uniform_u64_below(rng, span + 1) as $ty
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit: $ty = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);
