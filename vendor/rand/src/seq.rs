//! Slice helpers: random shuffling and element choice.

use crate::distributions::SampleRange;
use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: Rng + ?Sized;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized,
    {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: Rng + ?Sized,
    {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Step(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut Step(1)).is_none());
    }
}
