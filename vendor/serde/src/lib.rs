//! Vendored minimal serde.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of serde this workspace relies on: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, wired to a simple self-describing
//! [`Value`] model instead of serde's visitor architecture. The companion
//! `serde_json` vendored crate renders [`Value`] to and from JSON text, so
//! `serde_json::to_string` / `from_str` round trips behave as callers expect.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the vendored stand-in for serde's
/// data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum variants).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Deserializes a value of `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a serialized map (used by derived impls).
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u128::from(*self))
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$ty>::try_from(*u)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::custom(concat!("expected unsigned integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, u128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u128)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::UInt(u) => {
                usize::try_from(*u).map_err(|_| Error::custom("integer out of range for usize"))
            }
            _ => Err(Error::custom("expected unsigned integer for usize")),
        }
    }
}

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Int(v)
                } else {
                    Value::UInt(v as u128)
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).map(|v| v as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// `Value` round-trips through itself, so generic containers (snapshot
// envelopes) can hold an opaque, backend-specific payload without knowing
// its concrete type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::UInt(3)).unwrap(),
            Some(3u32)
        );
    }

    #[test]
    fn signed_positive_serializes_as_uint() {
        assert_eq!(5i32.to_value(), Value::UInt(5));
        assert_eq!((-5i32).to_value(), Value::Int(-5));
        assert_eq!(i32::from_value(&Value::UInt(5)).unwrap(), 5);
    }

    #[test]
    fn get_field_reports_missing() {
        let map = vec![("a".to_string(), Value::UInt(1))];
        assert!(get_field(&map, "a").is_ok());
        assert!(get_field(&map, "b").is_err());
    }
}
