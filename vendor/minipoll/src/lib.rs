//! Vendored minimal mio-style readiness polling.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the small slice of `mio` the workspace needs: a [`Poll`] instance that
//! watches non-blocking sockets for readiness, [`Token`]-tagged [`Event`]s,
//! per-source [`Interest`] (readable/writable), and a cross-thread [`Waker`]
//! that interrupts a blocked [`Poll::poll`].
//!
//! Two backends:
//!
//! * **epoll** (Linux, the default): level-triggered `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`, with an `eventfd`-backed waker. All FFI and
//!   `unsafe` in the workspace lives in this crate, behind a safe API —
//!   exactly where it would live if the real `mio` were available.
//! * **stub** (portable fallback, and [`Poll::stub`] everywhere): keeps the
//!   registration table and reports every registered source as ready at a
//!   small fixed cadence. Combined with non-blocking sockets this is a
//!   correct (spurious-readiness is allowed by the contract, as with any
//!   level-triggered poll) but busy-ish fallback for platforms without an
//!   epoll binding. Wakers still interrupt the wait immediately.
//!
//! The readiness contract is level-triggered and *advisory*: a reported
//! readiness may be spurious, and consumers must treat `WouldBlock` from the
//! subsequent I/O call as "not actually ready".

use std::io;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration; returned verbatim in
/// every [`Event`] for that source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest for a registration: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (`READABLE.add(WRITABLE)` watches both).
    /// Named for mio parity; `|` also works via the `BitOr` impl.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include write readiness?
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification: the registration's [`Token`] plus what it is
/// ready for.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the ready source was registered with.
    #[must_use]
    pub fn token(&self) -> Token {
        self.token
    }

    /// Ready for reading (includes error/hang-up conditions, which a read
    /// call will surface as `Ok(0)` or an error — the mio convention).
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Ready for writing.
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The peer closed or the source errored (`EPOLLHUP`/`EPOLLERR`);
    /// always also reported readable so a read can collect the reason.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that receives at most `capacity` events per poll.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Number of events delivered by the last poll.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Did the last poll deliver no events (timeout)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// The readiness poller: register sources, then block on [`Poll::poll`].
#[derive(Debug)]
pub struct Poll {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Stub(stub::Stub),
}

impl Poll {
    /// A poller using the best backend for the platform (epoll on Linux,
    /// the portable stub elsewhere).
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poll {
                backend: Backend::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poll::stub())
        }
    }

    /// A poller on the portable stub backend (every registered source is
    /// reported ready at a ~1 ms cadence). Used on platforms without an
    /// epoll binding, and by tests that pin the fallback behaviour.
    #[must_use]
    pub fn stub() -> Poll {
        Poll {
            backend: Backend::Stub(stub::Stub::new()),
        }
    }

    /// Registers `source` for `interest` under `token`. One registration
    /// per file descriptor; re-registering an already registered source is
    /// an error (use [`Poll::reregister`]).
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. `EEXIST`).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_ADD, source.as_raw_fd(), token, interest),
            Backend::Stub(s) => s.register(source.as_raw_fd(), token, interest),
        }
    }

    /// Replaces the token/interest of an already registered source.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. `ENOENT`).
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_MOD, source.as_raw_fd(), token, interest),
            Backend::Stub(s) => s.register(source.as_raw_fd(), token, interest),
        }
    }

    /// Removes a source's registration. Must be called before the source is
    /// dropped when the `Poll` outlives it (epoll drops closed fds on its
    /// own, but the stub table does not).
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_DEL, source.as_raw_fd(), Token(0), Interest(0)),
            Backend::Stub(s) => s.deregister(source.as_raw_fd()),
        }
    }

    /// Blocks until at least one registered source is ready, a [`Waker`]
    /// fires, or `timeout` elapses (`None` waits indefinitely), then fills
    /// `events`. An empty `events` after return means the timeout elapsed.
    ///
    /// # Errors
    /// Propagates `epoll_wait` failure (`EINTR` is retried internally).
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout),
            Backend::Stub(s) => {
                s.wait(events, timeout);
                Ok(())
            }
        }
    }

    /// Creates a [`Waker`] that interrupts this poller's [`Poll::poll`],
    /// delivering a readable [`Event`] carrying `token`. The waker is
    /// `Send + Clone`; the poll loop should call [`Waker::drain`] when it
    /// sees the token (level-triggered backends re-report an undrained
    /// waker forever).
    ///
    /// # Errors
    /// Propagates `eventfd` creation/registration failure.
    pub fn waker(&self, token: Token) -> io::Result<Waker> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => {
                let fd = Arc::new(epoll::EventFd::new()?);
                e.ctl(epoll::CTL_ADD, fd.as_raw_fd(), token, Interest::READABLE)?;
                Ok(Waker {
                    inner: WakerInner::EventFd(fd),
                })
            }
            Backend::Stub(s) => Ok(Waker {
                inner: WakerInner::Stub {
                    state: Arc::clone(&s.wake),
                    token,
                },
            }),
        }
    }
}

/// Cross-thread handle that interrupts a blocked [`Poll::poll`].
#[derive(Debug, Clone)]
pub struct Waker {
    inner: WakerInner,
}

#[derive(Debug, Clone)]
enum WakerInner {
    #[cfg(target_os = "linux")]
    EventFd(Arc<epoll::EventFd>),
    Stub {
        state: Arc<stub::WakeState>,
        token: Token,
    },
}

impl Waker {
    /// Makes the next (or current) [`Poll::poll`] return with this waker's
    /// token. Idempotent: multiple wakes before a drain coalesce.
    ///
    /// # Errors
    /// Propagates the eventfd write failure.
    pub fn wake(&self) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::EventFd(fd) => fd.write_one(),
            WakerInner::Stub { state, token } => {
                state.wake(*token);
                Ok(())
            }
        }
    }

    /// Consumes pending wake signals so a level-triggered backend stops
    /// re-reporting the waker. Call from the poll loop on the waker token.
    pub fn drain(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::EventFd(fd) => fd.drain(),
            WakerInner::Stub { state, token } => state.drain(*token),
        }
    }
}

/// Portable fallback backend: a registration table that reports everything
/// ready at a small cadence, plus a condvar-based waker.
mod stub {
    use super::{Event, Events, Interest, Token};
    use std::collections::HashMap;
    use std::os::fd::RawFd;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// The cadence at which the stub re-reports readiness when nothing
    /// wakes it: long enough to keep the busy-poll cheap, short enough that
    /// non-blocking I/O stays responsive.
    const SPIN: Duration = Duration::from_millis(1);

    #[derive(Debug)]
    pub(super) struct WakeState {
        woken: Mutex<Vec<Token>>,
        condvar: Condvar,
    }

    impl WakeState {
        pub(super) fn wake(&self, token: Token) {
            let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
            if !woken.contains(&token) {
                woken.push(token);
            }
            self.condvar.notify_all();
        }

        pub(super) fn drain(&self, token: Token) {
            let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
            woken.retain(|t| *t != token);
        }
    }

    #[derive(Debug)]
    pub(super) struct Stub {
        regs: Mutex<HashMap<RawFd, (Token, Interest)>>,
        pub(super) wake: Arc<WakeState>,
    }

    impl Stub {
        pub(super) fn new() -> Stub {
            Stub {
                regs: Mutex::new(HashMap::new()),
                wake: Arc::new(WakeState {
                    woken: Mutex::new(Vec::new()),
                    condvar: Condvar::new(),
                }),
            }
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> super::io::Result<()> {
            let mut regs = self.regs.lock().unwrap_or_else(|e| e.into_inner());
            regs.insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn deregister(&self, fd: RawFd) -> super::io::Result<()> {
            let mut regs = self.regs.lock().unwrap_or_else(|e| e.into_inner());
            regs.remove(&fd);
            Ok(())
        }

        pub(super) fn wait(&self, events: &mut Events, timeout: Option<Duration>) {
            let wait = timeout.map_or(SPIN, |t| t.min(SPIN));
            {
                let woken = self.wake.woken.lock().unwrap_or_else(|e| e.into_inner());
                let (mut woken, _) = self
                    .wake
                    .condvar
                    .wait_timeout(woken, wait)
                    .unwrap_or_else(|e| e.into_inner());
                for token in woken.drain(..) {
                    if events.inner.len() >= events.capacity {
                        break;
                    }
                    events.inner.push(Event {
                        token,
                        readable: true,
                        writable: false,
                        closed: false,
                    });
                }
            }
            let regs = self.regs.lock().unwrap_or_else(|e| e.into_inner());
            for (token, interest) in regs.values() {
                if events.inner.len() >= events.capacity {
                    break;
                }
                events.inner.push(Event {
                    token: *token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    closed: false,
                });
            }
        }
    }
}

/// Linux backend: level-triggered epoll plus an eventfd waker. The only
/// `unsafe` in the workspace lives in this module (FFI declarations and the
/// calls into them), mirroring where it would live in the real `mio`.
#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Events, Interest, Token};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    pub(super) const CTL_ADD: i32 = 1;
    pub(super) const CTL_DEL: i32 = 2;
    pub(super) const CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
    /// there has no padding between `events` and `data`); naturally aligned
    /// elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall; the returned fd is owned by `Epoll`
            // and closed exactly once in `Drop`.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        pub(super) fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.is_readable() {
                events |= EPOLLIN;
            }
            if interest.is_writable() {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token.0 as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    if ms == 0 && !d.is_zero() {
                        1 // round sub-millisecond timeouts up, not to busy-wait
                    } else {
                        i32::try_from(ms).unwrap_or(i32::MAX)
                    }
                }
            };
            let capacity = events.capacity;
            let mut raw = vec![EpollEvent { events: 0, data: 0 }; capacity];
            let n = loop {
                // SAFETY: `raw` is a live buffer of `capacity` entries; the
                // kernel writes at most `capacity` of them.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr(),
                        i32::try_from(capacity).unwrap_or(i32::MAX),
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for re in raw.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let bits = re.events;
                let data = re.data;
                let closed = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.inner.push(Event {
                    token: Token(data as usize),
                    // Error/hang-up count as readable so the owner performs
                    // the read that surfaces the condition.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    closed,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: fd owned by self, closed exactly once.
            unsafe { close(self.epfd) };
        }
    }

    /// An owned eventfd used as the waker: writes increment a counter the
    /// poller sees as readable; draining reads it back to zero.
    #[derive(Debug)]
    pub(super) struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        pub(super) fn new() -> io::Result<EventFd> {
            // SAFETY: plain syscall; fd owned by `EventFd`.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        pub(super) fn write_one(&self) -> io::Result<()> {
            let one: u64 = 1;
            let buf = one.to_ne_bytes();
            // SAFETY: 8 valid bytes, the size eventfd requires.
            let rc = unsafe { write(self.fd, buf.as_ptr(), buf.len()) };
            // A full counter (EAGAIN) still wakes the poller; treat it as
            // success like mio does.
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        pub(super) fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: 8 valid writable bytes. Non-blocking fd: returns
            // immediately once the counter is zero.
            while unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl AsRawFd for EventFd {
        fn as_raw_fd(&self) -> RawFd {
            self.fd
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: fd owned by self, closed exactly once.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    const CONN: Token = Token(7);
    const WAKE: Token = Token(99);

    fn wait_for(poll: &Poll, events: &mut Events, token: Token) -> Event {
        for _ in 0..500 {
            poll.poll(events, Some(Duration::from_millis(20))).unwrap();
            if let Some(e) = events.iter().find(|e| e.token() == token) {
                return *e;
            }
        }
        panic!("token {token:?} never became ready");
    }

    #[test]
    fn connected_socket_reports_writable_then_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (mut served, _) = listener.accept().unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&client, CONN, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        let e = wait_for(&poll, &mut events, CONN);
        assert!(e.is_writable(), "fresh connection must be writable");

        served.write_all(b"ping").unwrap();
        let e = wait_for(&poll, &mut events, CONN);
        assert!(e.is_readable(), "bytes in flight must report readable");
        let mut buf = [0u8; 8];
        let n = (&client).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        poll.deregister(&client).unwrap();
    }

    #[test]
    fn reregister_narrows_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let _served = listener.accept().unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&client, CONN, Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        let e = wait_for(&poll, &mut events, CONN);
        assert!(e.is_writable());

        // Readable-only on an idle writable socket: no events until data.
        poll.reregister(&client, CONN, Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        #[cfg(target_os = "linux")]
        assert!(
            events.iter().all(|e| e.token() != CONN || !e.is_writable()),
            "writable must not be reported after narrowing to readable"
        );
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let poll = Poll::new().unwrap();
        let waker = poll.waker(WAKE).unwrap();
        let remote = waker.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        // Blocks until the waker fires (5 s cap only so a regression fails
        // instead of hanging the suite).
        let e = wait_for(&poll, &mut events, WAKE);
        assert!(e.is_readable());
        waker.drain();
        handle.join().unwrap();

        // Drained: a short poll sees nothing from the waker.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != WAKE));
    }

    #[test]
    fn stub_backend_reports_registrations_and_wakes() {
        let poll = Poll::stub();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poll.register(&listener, CONN, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token() == CONN && e.is_readable()),
            "stub reports every registration ready"
        );

        let waker = poll.waker(WAKE).unwrap();
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKE));
        waker.drain();

        poll.deregister(&listener).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != CONN));
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
