//! Vendored ChaCha random number generators.
//!
//! Implements the actual ChaCha stream cipher (D. J. Bernstein) as an RNG:
//! a 512-bit state of sixteen 32-bit words — four constants, a 256-bit key
//! taken from the seed, a 64-bit block counter and a 64-bit stream id — run
//! for 8 or 20 rounds per block. Only the API surface this workspace uses is
//! provided: `from_seed`, `seed_from_u64` (via the vendored [`SeedableRng`]),
//! the [`RngCore`] output methods and (mirroring the real crate's `serde1`
//! feature) `serde` state serialization, so streaming-clusterer snapshots
//! can resume a generator mid-stream bit-identically.

use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Error, Serialize, Value};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }

        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

/// The full generator state is serialized — key, counter, stream id, the
/// current output block and the read position within it — so a restored
/// generator continues the exact output sequence of the snapshotted one.
impl<const ROUNDS: usize> Serialize for ChaChaCore<ROUNDS> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("key".to_string(), self.key.to_vec().to_value()),
            ("counter".to_string(), self.counter.to_value()),
            ("stream".to_string(), self.stream.to_value()),
            ("buffer".to_string(), self.buffer.to_vec().to_value()),
            ("index".to_string(), self.index.to_value()),
        ])
    }
}

impl<const ROUNDS: usize> Deserialize for ChaChaCore<ROUNDS> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Map(m) => m,
            _ => return Err(Error::custom("expected map for ChaCha state")),
        };
        let key: Vec<u32> = Deserialize::from_value(serde::get_field(map, "key")?)?;
        let buffer: Vec<u32> = Deserialize::from_value(serde::get_field(map, "buffer")?)?;
        let key: [u32; 8] = key
            .try_into()
            .map_err(|_| Error::custom("ChaCha key must have 8 words"))?;
        let buffer: [u32; 16] = buffer
            .try_into()
            .map_err(|_| Error::custom("ChaCha buffer must have 16 words"))?;
        let index: usize = Deserialize::from_value(serde::get_field(map, "index")?)?;
        if index > 16 {
            return Err(Error::custom("ChaCha buffer index out of range"));
        }
        Ok(Self {
            key,
            counter: Deserialize::from_value(serde::get_field(map, "counter")?)?,
            stream: Deserialize::from_value(serde::get_field(map, "stream")?)?,
            buffer,
            index,
        })
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl $name {
            /// Selects the 64-bit stream id (distinct ids yield independent
            /// streams for the same seed).
            pub fn set_stream(&mut self, stream: u64) {
                self.core.stream = stream;
                self.core.index = 16;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::from_seed(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.core.next_word());
                let hi = u64::from(self.core.next_word());
                (hi << 32) | lo
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                self.core.to_value()
            }
        }

        impl Deserialize for $name {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(Self {
                    core: Deserialize::from_value(value)?,
                })
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the fast statistical RNG."
);
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds: balanced speed/margin."
);
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds: the full-strength variant."
);

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 test vector for the ChaCha quarter round.
    #[test]
    fn quarter_round_matches_rfc8439_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    /// The counter advances across blocks: draining one 16-word block and
    /// continuing must not repeat the block.
    #[test]
    fn blocks_do_not_repeat() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    /// Serializing mid-block and restoring must continue the exact output
    /// sequence (including the partially consumed buffer position).
    #[test]
    fn serde_round_trip_resumes_mid_stream() {
        let mut rng = ChaCha20Rng::seed_from_u64(99);
        for _ in 0..21 {
            rng.next_u32(); // land mid-buffer, past the first block
        }
        let value = rng.to_value();
        let mut restored = ChaCha20Rng::from_value(&value).unwrap();
        let original: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let resumed: Vec<u64> = (0..40).map(|_| restored.next_u64()).collect();
        assert_eq!(original, resumed);
    }

    #[test]
    fn serde_rejects_malformed_state() {
        assert!(ChaCha20Rng::from_value(&Value::Null).is_err());
        assert!(ChaCha20Rng::from_value(&Value::Map(vec![])).is_err());
        let mut good = match ChaCha8Rng::seed_from_u64(1).to_value() {
            Value::Map(m) => m,
            other => panic!("expected map, got {other:?}"),
        };
        // Truncate the key: must be rejected, not zero-padded.
        good[0].1 = Value::Seq(vec![Value::UInt(1)]);
        assert!(ChaCha8Rng::from_value(&Value::Map(good)).is_err());
    }
}
