//! Integration tests for the paper's qualitative claims, stated in terms of
//! operation counts and structure (not wall-clock time) so they are robust
//! in CI.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::prelude::*;
use streaming_kmeans::stream::numeric::ceil_log;

fn random_stream(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let anchors: Vec<Vec<f64>> = (0..5)
        .map(|a| {
            (0..dim)
                .map(|d| f64::from(a * 17 + d as i32 % 3) * 3.0)
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let a = &anchors[i % anchors.len()];
            a.iter().map(|x| x + rng.gen::<f64>()).collect()
        })
        .collect()
}

/// Table 1, query-cost column: with queries after every base bucket, CT
/// merges Θ(r·log N) coresets per query while CC merges at most r (+1 for
/// the partial bucket); RCC touches O(log log N) ≈ a small constant.
#[test]
fn query_merge_counts_follow_table_1() {
    let m = 20;
    let r = 2u64;
    let config = StreamConfig::new(3)
        .with_bucket_size(m)
        .with_merge_degree(r)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1);
    let stream = random_stream(m * 255, 4, 7); // 255 buckets = (11111111)_2

    let mut ct = CoresetTreeClusterer::new(config, 1).unwrap();
    let mut cc = CachedCoresetTree::new(config, 1).unwrap();
    let mut rcc = RecursiveCachedTree::new(config, 2, 1).unwrap();

    let mut ct_max = 0usize;
    let mut cc_max = 0usize;
    let mut rcc_max = 0usize;
    for (i, p) in stream.iter().enumerate() {
        ct.update(p).unwrap();
        cc.update(p).unwrap();
        rcc.update(p).unwrap();
        if (i + 1) % m == 0 {
            ct.query().unwrap();
            cc.query().unwrap();
            rcc.query().unwrap();
            ct_max = ct_max.max(ct.last_query_stats().unwrap().coresets_merged);
            cc_max = cc_max.max(cc.last_query_stats().unwrap().coresets_merged);
            rcc_max = rcc_max.max(rcc.last_query_stats().unwrap().coresets_merged);
        }
    }
    let n_buckets = (stream.len() / m) as u64;
    // CT worst case: one active bucket per level, i.e. about log_2(N) merges.
    assert!(
        ct_max as u32 >= ceil_log(n_buckets, r) - 1,
        "CT max merges {ct_max} unexpectedly small for N = {n_buckets}"
    );
    // CC: at most r coresets plus the partial base bucket.
    assert!(
        cc_max <= r as usize + 1,
        "CC max merges {cc_max} exceeds r + 1 = {}",
        r + 1
    );
    // RCC: a small constant, far below CT.
    assert!(rcc_max <= 7, "RCC max merges {rcc_max}");
    assert!(
        ct_max > cc_max,
        "CT ({ct_max}) should merge more than CC ({cc_max})"
    );
}

/// Lemma 5 / Table 1 accuracy column: with queries after every bucket, the
/// level of the coreset CC returns stays below 2·log_r(N), while CT's stays
/// below log_r(N).
#[test]
fn coreset_levels_respect_fact_1_and_lemma_5() {
    let m = 10;
    let r = 2u64;
    let config = StreamConfig::new(2)
        .with_bucket_size(m)
        .with_merge_degree(r)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1);
    let stream = random_stream(m * 200, 3, 11);

    let mut ct = CoresetTreeClusterer::new(config, 2).unwrap();
    let mut cc = CachedCoresetTree::new(config, 2).unwrap();
    for (i, p) in stream.iter().enumerate() {
        ct.update(p).unwrap();
        cc.update(p).unwrap();
        if (i + 1) % m == 0 {
            let n = ((i + 1) / m) as u64;
            ct.query().unwrap();
            cc.query().unwrap();
            let ct_level = ct.last_query_stats().unwrap().coreset_level.unwrap();
            let cc_level = cc.last_query_stats().unwrap().coreset_level.unwrap();
            assert!(
                ct_level <= ceil_log(n, r),
                "CT level {ct_level} exceeds Fact 1 bound {} at N = {n}",
                ceil_log(n, r)
            );
            assert!(
                cc_level <= 2 * ceil_log(n, r).max(1),
                "CC level {cc_level} exceeds Lemma 5 bound {} at N = {n}",
                2 * ceil_log(n, r).max(1)
            );
        }
    }
}

/// OnlineCC answers most queries without running k-means++ (the "usually
/// O(1)" claim of Table 1), yet falls back often enough to keep accuracy.
#[test]
fn online_cc_answers_most_queries_on_the_fast_path() {
    let config = StreamConfig::new(4)
        .with_bucket_size(80)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    let stream = random_stream(20_000, 4, 13);
    let mut online = OnlineCC::new(config, 2.0, 5).unwrap();
    let mut fast_path = 0usize;
    let mut total_queries = 0usize;
    for (i, p) in stream.iter().enumerate() {
        online.update(p).unwrap();
        if (i + 1) % 100 == 0 {
            online.query().unwrap();
            total_queries += 1;
            if !online.last_query_stats().unwrap().ran_kmeans {
                fast_path += 1;
            }
        }
    }
    assert_eq!(total_queries, 200);
    assert!(
        fast_path * 2 > total_queries,
        "expected most queries on the fast path, got {fast_path}/{total_queries}"
    );
    assert!(
        online.fallback_count() >= 1,
        "expected at least one fallback to CC"
    );
}

/// Repeating a query without new data must return the same number of centers
/// and must not grow memory (the cache replaces, never accumulates).
#[test]
fn repeated_queries_are_stable_and_do_not_leak_memory() {
    let config = StreamConfig::new(3)
        .with_bucket_size(30)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1);
    let stream = random_stream(3_000, 3, 17);
    let mut cc = CachedCoresetTree::new(config, 9).unwrap();
    for p in &stream {
        cc.update(p).unwrap();
    }
    cc.query().unwrap();
    let mem_after_first = cc.memory_points();
    for _ in 0..20 {
        let centers = cc.query().unwrap();
        assert_eq!(centers.len(), 3);
    }
    assert_eq!(
        cc.memory_points(),
        mem_after_first,
        "repeated queries must not change stored memory"
    );
}

/// The cache never holds more than O(log_r N) coresets (Lemma 7's space
/// argument), even under constant querying.
#[test]
fn cache_size_stays_logarithmic_under_heavy_querying() {
    let m = 10;
    let config = StreamConfig::new(2)
        .with_bucket_size(m)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1);
    let stream = random_stream(m * 300, 2, 19);
    let mut cc = CachedCoresetTree::new(config, 21).unwrap();
    for (i, p) in stream.iter().enumerate() {
        cc.update(p).unwrap();
        if (i + 1) % 5 == 0 {
            cc.query().unwrap();
            let n = ((i + 1) / m).max(1) as u64;
            let bound = ceil_log(n, 2) as usize + 2;
            assert!(
                cc.cache().len() <= bound,
                "cache holds {} coresets at N = {n}, bound {bound}",
                cc.cache().len()
            );
        }
    }
}

/// Different merge degrees r give the same clustering quality ballpark but
/// different tree shapes — the r-way generalization the paper introduces on
/// top of streamkm++.
#[test]
fn merge_degree_changes_tree_shape_not_correctness() {
    let stream = random_stream(4_000, 3, 23);
    let mut costs = Vec::new();
    for r in [2u64, 4, 8] {
        let config = StreamConfig::new(5)
            .with_bucket_size(50)
            .with_merge_degree(r)
            .with_kmeans_runs(2)
            .with_lloyd_iterations(3);
        let mut cc = CachedCoresetTree::new(config, 31).unwrap();
        let mut all = streaming_kmeans::clustering::PointSet::new(3);
        for p in &stream {
            cc.update(p).unwrap();
            all.push(p, 1.0);
        }
        let centers = cc.query().unwrap();
        let cost = streaming_kmeans::clustering::cost::kmeans_cost(&all, &centers).unwrap();
        costs.push(cost);
    }
    let max = costs.iter().copied().fold(f64::MIN, f64::max);
    let min = costs.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        max <= 3.0 * min,
        "costs across merge degrees diverged too much: {costs:?}"
    );
}
