//! End-to-end integration tests spanning every crate of the workspace:
//! data generation → streaming clustering → accuracy/memory evaluation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::clustering::kmeans::KMeans;
use streaming_kmeans::data::uci_like::intrusion_like;
use streaming_kmeans::prelude::*;

const K: usize = 6;

fn mixture_stream(points: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    GaussianMixture::new(K, 6)
        .expect("valid generator")
        .generate(points, &mut rng)
        .shuffled(&mut rng)
}

fn test_config() -> StreamConfig {
    StreamConfig::new(K)
        .with_bucket_size(20 * K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5)
}

fn stream_through(
    clusterer: &mut dyn StreamingClusterer,
    dataset: &Dataset,
    query_every: usize,
) -> streaming_kmeans::clustering::Centers {
    for (i, p) in dataset.stream().enumerate() {
        clusterer.update(p).expect("update");
        if query_every > 0 && (i + 1) % query_every == 0 {
            clusterer.query().expect("intermediate query");
        }
    }
    clusterer.query().expect("final query")
}

/// Every streaming algorithm matches the batch k-means++ cost within a
/// constant factor on well-separated Gaussian data (the qualitative content
/// of Figure 4), except Sequential which is allowed to be worse.
#[test]
fn streaming_algorithms_match_batch_accuracy_on_mixture() {
    let dataset = mixture_stream(6_000, 1);
    let config = test_config();

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let batch = KMeans::new(K)
        .with_runs(3)
        .fit(dataset.points(), &mut rng)
        .expect("batch fit");
    let batch_cost = batch.cost;

    let mut ct = CoresetTreeClusterer::new(config, 7).unwrap();
    let mut cc = CachedCoresetTree::new(config, 7).unwrap();
    let mut rcc = RecursiveCachedTree::new(config, 2, 7).unwrap();
    let mut online = OnlineCC::new(config, 1.2, 7).unwrap();

    let algorithms: Vec<(&str, &mut dyn StreamingClusterer)> = vec![
        ("CT", &mut ct),
        ("CC", &mut cc),
        ("RCC", &mut rcc),
        ("OnlineCC", &mut online),
    ];
    for (name, algorithm) in algorithms {
        let centers = stream_through(algorithm, &dataset, 500);
        let cost = kmeans_cost(dataset.points(), &centers).expect("cost");
        assert!(
            cost <= 2.5 * batch_cost + 1e-9,
            "{name}: streaming cost {cost:.4e} vs batch {batch_cost:.4e}"
        );
        assert_eq!(centers.len(), K, "{name} returned wrong number of centers");
    }
}

/// Sequential k-means collapses on skewed data while the coreset algorithms
/// do not (Figure 4c).
#[test]
fn sequential_is_much_worse_on_skewed_intrusion_data() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let dataset = intrusion_like(5_000, &mut rng).shuffled(&mut rng);
    let config = StreamConfig::new(8)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);

    let mut sequential = SequentialKMeans::new(8).unwrap();
    let mut cc = CachedCoresetTree::new(config, 3).unwrap();

    let seq_centers = stream_through(&mut sequential, &dataset, 0);
    let cc_centers = stream_through(&mut cc, &dataset, 0);

    let seq_cost = kmeans_cost(dataset.points(), &seq_centers).unwrap();
    let cc_cost = kmeans_cost(dataset.points(), &cc_centers).unwrap();
    assert!(
        seq_cost > 3.0 * cc_cost,
        "expected Sequential ({seq_cost:.3e}) to be far worse than CC ({cc_cost:.3e})"
    );
}

/// Memory ordering of Table 4: StreamKM++ ≤ CC ≈ OnlineCC ≤ RCC, and all of
/// them are tiny compared to storing the stream.
#[test]
fn memory_ordering_matches_table_4() {
    let dataset = mixture_stream(8_000, 11);
    let config = test_config();

    let mut ct = CoresetTreeClusterer::new(config, 1).unwrap();
    let mut cc = CachedCoresetTree::new(config, 1).unwrap();
    let mut rcc = RecursiveCachedTree::for_stream_length(config, 3, dataset.len(), 1).unwrap();
    let mut online = OnlineCC::new(config, 1.2, 1).unwrap();

    stream_through(&mut ct, &dataset, 200);
    stream_through(&mut cc, &dataset, 200);
    stream_through(&mut rcc, &dataset, 200);
    stream_through(&mut online, &dataset, 200);

    let ct_mem = ct.memory_points();
    let cc_mem = cc.memory_points();
    let online_mem = online.memory_points();
    let rcc_mem = rcc.memory_points();

    assert!(
        ct_mem <= cc_mem,
        "CT {ct_mem} should use no more memory than CC {cc_mem}"
    );
    assert!(
        cc_mem <= 2 * ct_mem + config.bucket_size,
        "CC {cc_mem} should stay within ~2x of CT {ct_mem}"
    );
    // OnlineCC carries the same tree as CC; its cache is only refreshed on
    // fallbacks, so it is bounded by CC's footprint (plus the k centers and
    // initialization buffer) but can be smaller when fallbacks are rare.
    assert!(
        online_mem <= cc_mem + config.bucket_size + 2 * K + 1,
        "OnlineCC {online_mem} should not exceed CC {cc_mem} by more than a bucket"
    );
    assert!(
        online_mem * 3 >= cc_mem,
        "OnlineCC {online_mem} should be within a small factor of CC {cc_mem}"
    );
    assert!(
        cc_mem <= rcc_mem * 2,
        "RCC {rcc_mem} is expected to be the largest"
    );
    // All sublinear in the stream length.
    for (name, mem) in [
        ("CT", ct_mem),
        ("CC", cc_mem),
        ("RCC", rcc_mem),
        ("OnlineCC", online_mem),
    ] {
        assert!(
            mem < dataset.len() / 2,
            "{name} memory {mem} is not sublinear in {} stream points",
            dataset.len()
        );
    }
}

/// The trait-object interface works for heterogeneous collections (this is
/// what the benchmark harness and the examples rely on).
#[test]
fn trait_objects_are_usable_in_collections() {
    let dataset = mixture_stream(1_500, 21);
    let config = test_config();
    let mut algorithms: Vec<Box<dyn StreamingClusterer>> = vec![
        Box::new(SequentialKMeans::new(K).unwrap()),
        Box::new(CoresetTreeClusterer::new(config, 2).unwrap()),
        Box::new(CachedCoresetTree::new(config, 2).unwrap()),
        Box::new(RecursiveCachedTree::new(config, 2, 2).unwrap()),
        Box::new(OnlineCC::new(config, 2.0, 2).unwrap()),
        Box::new(BatchKMeansPP::new(config, 2).unwrap()),
    ];
    for algorithm in &mut algorithms {
        let centers = stream_through(algorithm.as_mut(), &dataset, 400);
        assert!(centers.len() <= K);
        assert!(!centers.is_empty());
        assert_eq!(algorithm.points_seen(), dataset.len() as u64);
    }
}

/// Sharded ingestion is fully deterministic at a fixed `(seed, shards)`
/// pair: repeated runs return bit-identical centers, including queries
/// issued mid-stream (which drain in-flight batches first).
#[test]
fn sharded_stream_is_deterministic_at_fixed_seed_and_shards() {
    let dataset = mixture_stream(4_000, 41);
    let config = test_config();
    for shards in [1, 2, 4] {
        let run = || {
            let mut sharded =
                ShardedStream::cc(config, shards, 64, 7).expect("valid configuration");
            let mut mid = None;
            for (i, p) in dataset.stream().enumerate() {
                sharded.update(p).expect("update");
                if i + 1 == dataset.len() / 2 {
                    mid = Some(sharded.query().expect("mid-stream query"));
                }
            }
            (
                mid.expect("stream long enough"),
                sharded.query().expect("final query"),
            )
        };
        let (a_mid, a_end) = run();
        let (b_mid, b_end) = run();
        assert_eq!(a_mid, b_mid, "{shards} shards: mid-stream query diverged");
        assert_eq!(a_end, b_end, "{shards} shards: final query diverged");
    }
}

/// Sharding costs no accuracy beyond the coreset guarantee: on the Gaussian
/// drift workload, the merged multi-shard answer stays within the paper's
/// approximation envelope of the single-shard baseline (each shard
/// summarizes a disjoint sub-stream, so the union of the per-shard coresets
/// is a coreset of the whole stream — Observation 1).
#[test]
fn sharded_cost_stays_within_envelope_of_single_shard_on_gaussian_drift() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let dataset = RbfDriftGenerator::new(K, 8)
        .expect("valid generator")
        .with_speed(0.5)
        .with_points_per_step(100)
        .generate(6_000, &mut rng);
    let config = test_config();

    let mut single = ShardedStream::cc(config, 1, 128, 5).expect("valid configuration");
    let mut sharded = ShardedStream::cc(config, 4, 128, 5).expect("valid configuration");
    for p in dataset.stream() {
        single.update(p).expect("update");
        sharded.update(p).expect("update");
    }
    let single_cost = kmeans_cost(dataset.points(), &single.query().expect("query")).expect("cost");
    let sharded_cost =
        kmeans_cost(dataset.points(), &sharded.query().expect("query")).expect("cost");
    assert!(
        sharded_cost <= 2.5 * single_cost + 1e-9,
        "4-shard cost {sharded_cost:.4e} outside the envelope of 1-shard cost {single_cost:.4e}"
    );
    assert!(
        single_cost <= 2.5 * sharded_cost + 1e-9,
        "1-shard cost {single_cost:.4e} outside the envelope of 4-shard cost {sharded_cost:.4e}"
    );
}

/// `update_batch` is behaviourally identical to a per-point update loop:
/// same buckets, same RNG consumption, bit-identical query answers.
#[test]
fn batch_updates_match_per_point_updates_bit_for_bit() {
    let dataset = mixture_stream(2_500, 51);
    let config = test_config();
    let points: Vec<&[f64]> = dataset.stream().collect();

    let mut per_point = CachedCoresetTree::new(config, 13).unwrap();
    for p in &points {
        per_point.update(p).expect("update");
    }
    let mut batched = CachedCoresetTree::new(config, 13).unwrap();
    for chunk in points.chunks(97) {
        batched.update_batch(chunk).expect("update_batch");
    }
    assert_eq!(per_point.points_seen(), batched.points_seen());
    assert_eq!(
        per_point.query().expect("query"),
        batched.query().expect("query"),
        "batched ingestion must be indistinguishable from per-point ingestion"
    );
}

/// Query statistics expose the paper's central quantitative difference: with
/// frequent queries, CC touches far fewer coresets per query than CT.
#[test]
fn cc_merges_fewer_coresets_than_ct_under_frequent_queries() {
    let dataset = mixture_stream(6_000, 31);
    let config = StreamConfig::new(4)
        .with_bucket_size(40)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(1);

    let mut ct = CoresetTreeClusterer::new(config, 3).unwrap();
    let mut cc = CachedCoresetTree::new(config, 3).unwrap();

    let mut ct_merged = 0usize;
    let mut cc_merged = 0usize;
    let mut ct_max = 0usize;
    let mut cc_max = 0usize;
    let mut queries = 0usize;
    for (i, p) in dataset.stream().enumerate() {
        ct.update(p).unwrap();
        cc.update(p).unwrap();
        if (i + 1) % 40 == 0 {
            ct.query().unwrap();
            cc.query().unwrap();
            let ct_q = ct.last_query_stats().unwrap().coresets_merged;
            let cc_q = cc.last_query_stats().unwrap().coresets_merged;
            ct_merged += ct_q;
            cc_merged += cc_q;
            ct_max = ct_max.max(ct_q);
            cc_max = cc_max.max(cc_q);
            queries += 1;
        }
    }
    assert!(queries > 100);
    // CC touches at most r (+1 for the partial bucket) coresets per query;
    // CT's worst case grows with log_r(N) and must exceed that.
    assert!(cc_max <= 3, "CC max merges per query was {cc_max}");
    assert!(
        ct_max > cc_max,
        "CT max merges {ct_max} should exceed CC max merges {cc_max}"
    );
    assert!(
        cc_merged < ct_merged,
        "CC merged {cc_merged} coresets across {queries} queries, CT merged {ct_merged}; \
         expected CC to merge fewer in total"
    );
}
