//! Property-style tests on the core data structures and invariants of the
//! reproduction.
//!
//! These were originally written against `proptest`; the offline build
//! environment cannot fetch it, so the same properties are exercised with a
//! deterministic ChaCha-driven case generator (fixed seed per test, many
//! cases per property). Failures therefore always reproduce exactly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::clustering::kmeanspp::kmeanspp;
use streaming_kmeans::clustering::{Centers, PointBlock, PointSet};
use streaming_kmeans::coreset::construct::{CoresetBuilder, CoresetMethod};
use streaming_kmeans::coreset::Span;
use streaming_kmeans::prelude::*;
use streaming_kmeans::stream::numeric::{ceil_log, major, minor, nonzero_digits, prefixsum};

const CASES: usize = 64;

/// Generates a small weighted point set in 1–4 dimensions (unit weights).
fn random_point_set(rng: &mut ChaCha8Rng) -> PointSet {
    let dim = rng.gen_range(1..=4usize);
    let n = rng.gen_range(1..=120usize);
    let mut set = PointSet::new(dim);
    let mut row = vec![0.0f64; dim];
    for _ in 0..n {
        for x in row.iter_mut() {
            *x = rng.gen_range(-1_000.0..1_000.0f64);
        }
        set.push(&row, 1.0);
    }
    set
}

// --- numeric: base-r decompositions -------------------------------------

#[test]
fn major_plus_minor_reconstructs_n() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for _ in 0..CASES {
        let n = rng.gen_range(0..1_000_000u64);
        let r = rng.gen_range(2..10u64);
        assert_eq!(major(n, r) + minor(n, r), n, "n={n} r={r}");
    }
}

#[test]
fn minor_is_a_single_base_r_digit() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for _ in 0..CASES {
        let n = rng.gen_range(1..1_000_000u64);
        let r = rng.gen_range(2..10u64);
        let m = minor(n, r);
        assert!(m > 0, "n={n} r={r}");
        // minor must be of the form beta * r^alpha with 0 < beta < r.
        let mut value = m;
        while value.is_multiple_of(r) {
            value /= r;
        }
        assert!(value < r, "n={n} r={r} m={m}");
        assert!(value > 0, "n={n} r={r} m={m}");
    }
}

#[test]
fn prefixsum_is_decreasing_and_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let n = rng.gen_range(1..1_000_000u64);
        let r = rng.gen_range(2..10u64);
        let ps = prefixsum(n, r);
        assert_eq!(
            ps.len() as u32,
            nonzero_digits(n, r).saturating_sub(1),
            "n={n} r={r}"
        );
        for w in ps.windows(2) {
            assert!(w[0] > w[1], "n={n} r={r} ps={ps:?}");
        }
        for v in &ps {
            assert!(*v < n, "n={n} r={r} ps={ps:?}");
            assert!(*v > 0, "n={n} r={r} ps={ps:?}");
        }
        if !ps.is_empty() {
            assert_eq!(ps[0], major(n, r), "n={n} r={r}");
        }
    }
}

#[test]
fn fact_2_prefixsum_recurrence() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let n = rng.gen_range(1..100_000u64);
        let r = rng.gen_range(2..8u64);
        // prefixsum(N+1, r) ⊆ prefixsum(N, r) ∪ {N}
        let mut allowed = prefixsum(n, r);
        allowed.push(n);
        for v in prefixsum(n + 1, r) {
            assert!(allowed.contains(&v), "n={n} r={r} v={v}");
        }
    }
}

#[test]
fn ceil_log_bounds_power() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let n = rng.gen_range(1..1_000_000u64);
        let r = rng.gen_range(2..10u64);
        let e = ceil_log(n, r);
        // r^e >= n and r^(e-1) < n (for n > 1).
        let pow = r.checked_pow(e).unwrap_or(u64::MAX);
        assert!(pow >= n, "n={n} r={r} e={e}");
        if n > 1 && e > 0 {
            let lower = r.checked_pow(e - 1).unwrap_or(u64::MAX);
            assert!(lower < n, "n={n} r={r} e={e}");
        }
    }
}

// --- clustering substrate ------------------------------------------------

#[test]
fn kmeans_cost_is_zero_iff_centers_cover_points() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let points = random_point_set(&mut rng);
        // Centers equal to every distinct point => cost 0.
        let rows: Vec<Vec<f64>> = points.iter().map(|(p, _)| p.to_vec()).collect();
        let centers = Centers::from_rows(points.dim(), &rows).unwrap();
        let cost = kmeans_cost(&points, &centers).unwrap();
        assert!(cost.abs() < 1e-9, "cost={cost}");
    }
}

#[test]
fn kmeanspp_returns_requested_centers_and_finite_cost() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..CASES {
        let points = random_point_set(&mut rng);
        let k = rng.gen_range(1..8usize);
        let seed = rng.gen_range(0..1_000u64);
        let mut seeding_rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = kmeanspp(&points, k, &mut seeding_rng).unwrap();
        assert_eq!(centers.len(), k.min(points.len()));
        assert_eq!(centers.dim(), points.dim());
        let cost = kmeans_cost(&points, &centers).unwrap();
        assert!(cost.is_finite());
        assert!(cost >= 0.0);
    }
}

#[test]
fn adding_a_center_never_increases_cost() {
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    for _ in 0..CASES {
        let points = random_point_set(&mut rng);
        let seed = rng.gen_range(0..1_000u64);
        let mut seeding_rng = ChaCha8Rng::seed_from_u64(seed);
        let two = kmeanspp(&points, 2, &mut seeding_rng).unwrap();
        if two.len() == 2 {
            let one = Centers::from_rows(points.dim(), &[two.center(0).to_vec()]).unwrap();
            let cost_one = kmeans_cost(&points, &one).unwrap();
            let cost_two = kmeans_cost(&points, &two).unwrap();
            assert!(cost_two <= cost_one + 1e-9, "{cost_two} > {cost_one}");
        }
    }
}

// --- fused kernels vs the legacy per-point path --------------------------

/// Generates a point set with random (positive, finite) weights in 1–9
/// dimensions, exercising every tail length of the 4-lane dot kernel.
fn random_weighted_point_set(rng: &mut ChaCha8Rng) -> PointSet {
    let dim = rng.gen_range(1..=9usize);
    let n = rng.gen_range(1..=100usize);
    let mut set = PointSet::new(dim);
    let mut row = vec![0.0f64; dim];
    for _ in 0..n {
        for x in row.iter_mut() {
            *x = rng.gen_range(-1_000.0..1_000.0f64);
        }
        set.push(&row, rng.gen_range(0.0..10.0f64));
    }
    set
}

/// Error budget for comparing the fused expansion `‖x‖² − 2x·c + ‖c‖²`
/// against the legacy `Σ (x_j − c_j)²`: 1e-9 relative to the magnitudes
/// involved (the fused form's rounding error scales with the norms, the
/// legacy form's with the distance itself).
fn fused_tolerance(legacy: f64, x_norm: f64, c_norm: f64) -> f64 {
    1e-9 * (1.0 + legacy.abs() + x_norm + c_norm)
}

#[test]
fn fused_kernel_matches_legacy_per_point_path() {
    use streaming_kmeans::clustering::distance::{sq_dist_block, squared_distance, squared_norm};
    let mut rng = ChaCha8Rng::seed_from_u64(301);
    for _ in 0..CASES {
        let points = random_weighted_point_set(&mut rng);
        let block = PointBlock::from_point_set(&points);
        // Pit every pair (i, j) of a small prefix against each other.
        let limit = points.len().min(12);
        for i in 0..limit {
            for j in 0..limit {
                let (x, c) = (points.point(i), points.point(j));
                let legacy = squared_distance(x, c);
                let fused = sq_dist_block(x, block.norm(i), c, block.norm(j));
                assert!(
                    (legacy - fused).abs() <= fused_tolerance(legacy, block.norm(i), block.norm(j)),
                    "dim={} i={i} j={j}: legacy={legacy} fused={fused}",
                    points.dim()
                );
            }
        }
        // The cached norms themselves must match a direct evaluation.
        for i in 0..points.len() {
            let direct = squared_norm(points.point(i));
            assert!((block.norm(i) - direct).abs() <= 1e-12 * (1.0 + direct));
        }
    }
}

#[test]
fn fused_nearest_search_matches_legacy_distances() {
    use streaming_kmeans::clustering::distance::{
        nearest_block_row, nearest_center, squared_norm, squared_norms,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(302);
    for _ in 0..CASES {
        let points = random_weighted_point_set(&mut rng);
        let k = rng.gen_range(1..=6usize).min(points.len());
        let rows: Vec<Vec<f64>> = (0..k).map(|i| points.point(i).to_vec()).collect();
        let centers = Centers::from_rows(points.dim(), &rows).unwrap();
        let center_norms = squared_norms(centers.coords(), centers.dim());
        for (p, _) in points.iter() {
            let legacy = nearest_center(p, &centers).unwrap();
            let fused = nearest_block_row(
                p,
                squared_norm(p),
                centers.coords(),
                &center_norms,
                centers.dim(),
            )
            .unwrap();
            // Indices may differ on exact ties; the attained distances must
            // agree to within the fused error budget.
            let scale = squared_norm(p) + center_norms[legacy.0] + center_norms[fused.0];
            assert!(
                (legacy.1 - fused.1).abs() <= 1e-9 * (1.0 + legacy.1 + scale),
                "legacy={:?} fused={fused:?}",
                legacy
            );
        }
    }
}

#[test]
fn block_cost_path_matches_legacy_cost_loop() {
    use streaming_kmeans::clustering::cost::kmeans_cost_block;
    use streaming_kmeans::clustering::distance::squared_distance;
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    for _ in 0..CASES {
        let points = random_weighted_point_set(&mut rng);
        let block = PointBlock::from_point_set(&points);
        let k = rng.gen_range(1..=5usize).min(points.len());
        let rows: Vec<Vec<f64>> = (0..k).map(|i| points.point(i).to_vec()).collect();
        let centers = Centers::from_rows(points.dim(), &rows).unwrap();
        // Hand-rolled legacy cost: Σ w(x) · min_c Σ_j (x_j − c_j)².
        let mut legacy = 0.0;
        let mut scale = 0.0;
        for (i, (p, w)) in points.iter().enumerate() {
            let d2 = centers
                .iter()
                .map(|c| squared_distance(p, c))
                .fold(f64::INFINITY, f64::min);
            legacy += w * d2;
            scale += w * block.norm(i);
        }
        let via_set = kmeans_cost(&points, &centers).unwrap();
        let via_block = kmeans_cost_block(&block, &centers).unwrap();
        let tol = 1e-9 * (1.0 + legacy + scale);
        assert!(
            (legacy - via_set).abs() <= tol,
            "legacy={legacy} fused={via_set}"
        );
        assert!(
            (legacy - via_block).abs() <= tol,
            "legacy={legacy} fused-block={via_block}"
        );
    }
}

#[test]
fn point_block_round_trips_preserve_points_and_weights() {
    let mut rng = ChaCha8Rng::seed_from_u64(304);
    for _ in 0..CASES {
        let points = random_weighted_point_set(&mut rng);
        let block = PointBlock::from_point_set(&points);
        assert_eq!(block.len(), points.len());
        assert_eq!(block.dim(), points.dim());
        let back = block.clone().into_point_set();
        assert_eq!(back, points);
        let copied = block.to_point_set();
        assert_eq!(copied, points);
        assert!((block.total_weight() - points.total_weight()).abs() < 1e-9);
    }
}

// --- coresets ------------------------------------------------------------

#[test]
fn coreset_preserves_total_weight_and_caps_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(109);
    for case in 0..CASES {
        let points = random_point_set(&mut rng);
        let seed = rng.gen_range(0..1_000u64);
        let method = if case % 2 == 0 {
            CoresetMethod::KMeansPP
        } else {
            CoresetMethod::SensitivitySampling
        };
        let size = 30usize;
        let builder = CoresetBuilder::new(3).with_size(size).with_method(method);
        let mut build_rng = ChaCha8Rng::seed_from_u64(seed);
        let coreset = builder
            .build(&points, Span::single(1), 1, &mut build_rng)
            .unwrap();
        assert!(coreset.len() <= size);
        assert!(coreset.len() <= points.len());
        let diff = (coreset.total_weight() - points.total_weight()).abs();
        assert!(diff < 1e-6 * (1.0 + points.total_weight()));
        assert_eq!(coreset.points().dim(), points.dim());
    }
}

// --- streaming algorithms ------------------------------------------------

#[test]
fn streaming_clusterers_accept_any_stream_and_answer_queries() {
    let mut rng = ChaCha8Rng::seed_from_u64(110);
    for _ in 0..CASES {
        let n = rng.gen_range(30..200usize);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-100.0..100.0f64)).collect())
            .collect();
        let seed = rng.gen_range(0..500u64);
        let config = StreamConfig::new(3)
            .with_bucket_size(15)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);
        let mut cc = CachedCoresetTree::new(config, seed).unwrap();
        let mut ct = CoresetTreeClusterer::new(config, seed).unwrap();
        let mut online = OnlineCC::new(config, 1.5, seed).unwrap();
        for row in &rows {
            cc.update(row).unwrap();
            ct.update(row).unwrap();
            online.update(row).unwrap();
        }
        let points_seen = cc.points_seen();
        for (name, centers) in [
            ("CC", cc.query().unwrap()),
            ("CT", ct.query().unwrap()),
            ("OnlineCC", online.query().unwrap()),
        ] {
            assert!(centers.len() <= 3, "{name} returned too many centers");
            assert!(!centers.is_empty(), "{name} returned no centers");
            assert_eq!(centers.dim(), 3);
            // All centers lie within the (slightly padded) data bounding box.
            for c in centers.iter() {
                for &x in c {
                    assert!((-101.0..=101.0).contains(&x), "{name} center escaped: {x}");
                }
            }
        }
        assert_eq!(points_seen, rows.len() as u64);
    }
}

#[test]
fn coreset_tree_weight_equals_points_seen() {
    let mut rng = ChaCha8Rng::seed_from_u64(111);
    for _ in 0..CASES {
        let n_points = rng.gen_range(1..400usize);
        let bucket = rng.gen_range(5..40usize);
        let seed = rng.gen_range(0..500u64);
        let config = StreamConfig::new(2)
            .with_bucket_size(bucket.max(2))
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);
        let mut ct = CoresetTreeClusterer::new(config, seed).unwrap();
        let mut point_rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n_points {
            ct.update(&[point_rng.gen::<f64>(), point_rng.gen::<f64>()])
                .unwrap();
        }
        // Weight stored in the tree + points still in the partial buffer
        // must equal the number of points fed in (mass conservation through
        // arbitrary merge patterns).
        let tree_weight = ct.tree().stored_weight();
        let buffered = (n_points % ct.config().bucket_size) as f64;
        assert!(
            (tree_weight + buffered - n_points as f64).abs() < 1e-6,
            "n={n_points} bucket={bucket} tree={tree_weight} buffered={buffered}"
        );
        assert!(ct.tree().digit_invariant_holds());
    }
}

// --- robustness: non-finite input and batch-update equivalence -----------

/// Injecting NaN/±∞ points anywhere in a stream must (a) be rejected with
/// an error and (b) leave the clusterer in exactly the state of a clean run
/// over only the valid points — no poisoned norms, no advanced RNG, no
/// phantom `points_seen`.
#[test]
fn non_finite_points_are_rejected_without_poisoning_state() {
    let mut rng = ChaCha8Rng::seed_from_u64(131);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..=4usize);
        let n = rng.gen_range(30..200usize);
        let seed = rng.gen_range(0..500u64);
        let config = StreamConfig::new(2)
            .with_bucket_size(rng.gen_range(5..30usize).max(2))
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);

        let mut poisoned = CachedCoresetTree::new(config, seed).unwrap();
        let mut clean = CachedCoresetTree::new(config, seed).unwrap();
        let mut row = vec![0.0f64; dim];
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = rng.gen_range(-100.0..100.0f64);
            }
            poisoned.update(&row).unwrap();
            clean.update(&row).unwrap();
            if rng.gen_bool(0.2) {
                // A corrupted copy of the point, fed only to `poisoned`.
                let mut bad = row.clone();
                let coord = rng.gen_range(0..dim);
                bad[coord] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][rng.gen_range(0..3usize)];
                assert!(
                    poisoned.update(&bad).is_err(),
                    "non-finite point must be rejected (dim={dim})"
                );
            }
        }
        assert_eq!(poisoned.points_seen(), clean.points_seen());
        let a = poisoned.query().unwrap();
        let b = clean.query().unwrap();
        assert_eq!(
            a, b,
            "rejected points must leave no trace (dim={dim}, n={n})"
        );
        for c in a.iter() {
            assert!(c.iter().all(|x| x.is_finite()));
        }
    }
}

/// Feeding a stream through `update_batch` in random chunk sizes yields the
/// same internal state as the per-point loop: identical `points_seen` and
/// bit-identical query answers, across all overriding algorithms.
#[test]
fn update_batch_equals_per_point_updates() {
    let mut rng = ChaCha8Rng::seed_from_u64(137);
    for _ in 0..16 {
        let n = rng.gen_range(50..250usize);
        let seed = rng.gen_range(0..500u64);
        let config = StreamConfig::new(2)
            .with_bucket_size(rng.gen_range(4..25usize).max(2))
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);
        let rows: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();

        let check = |single: &mut dyn StreamingClusterer,
                     batched: &mut dyn StreamingClusterer,
                     chunk_rng: &mut ChaCha8Rng| {
            for r in &refs {
                single.update(r).unwrap();
            }
            let mut rest: &[&[f64]] = &refs;
            while !rest.is_empty() {
                let take = chunk_rng.gen_range(1..=rest.len());
                batched.update_batch(&rest[..take]).unwrap();
                rest = &rest[take..];
            }
            assert_eq!(single.points_seen(), batched.points_seen());
            assert_eq!(
                single.query().unwrap(),
                batched.query().unwrap(),
                "batched ingestion diverged ({})",
                single.name()
            );
        };
        check(
            &mut CoresetTreeClusterer::new(config, seed).unwrap(),
            &mut CoresetTreeClusterer::new(config, seed).unwrap(),
            &mut rng,
        );
        check(
            &mut CachedCoresetTree::new(config, seed).unwrap(),
            &mut CachedCoresetTree::new(config, seed).unwrap(),
            &mut rng,
        );
        check(
            &mut RecursiveCachedTree::new(config, 2, seed).unwrap(),
            &mut RecursiveCachedTree::new(config, 2, seed).unwrap(),
            &mut rng,
        );
    }
}
