//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::clustering::kmeanspp::kmeanspp;
use streaming_kmeans::clustering::{Centers, PointSet};
use streaming_kmeans::coreset::construct::{CoresetBuilder, CoresetMethod};
use streaming_kmeans::coreset::Span;
use streaming_kmeans::prelude::*;
use streaming_kmeans::stream::numeric::{ceil_log, major, minor, nonzero_digits, prefixsum};

/// Strategy: a small weighted point set in 1–4 dimensions.
fn point_set_strategy() -> impl Strategy<Value = PointSet> {
    (1usize..=4, 1usize..=120).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(proptest::collection::vec(-1_000.0f64..1_000.0, dim), n..=n)
            .prop_map(move |rows| {
                let mut set = PointSet::new(dim);
                for row in rows {
                    set.push(&row, 1.0);
                }
                set
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- numeric: base-r decompositions -------------------------------

    #[test]
    fn major_plus_minor_reconstructs_n(n in 0u64..1_000_000, r in 2u64..10) {
        prop_assert_eq!(major(n, r) + minor(n, r), n);
    }

    #[test]
    fn minor_is_a_single_base_r_digit(n in 1u64..1_000_000, r in 2u64..10) {
        let m = minor(n, r);
        prop_assert!(m > 0);
        // minor must be of the form beta * r^alpha with 0 < beta < r.
        let mut value = m;
        while value % r == 0 {
            value /= r;
        }
        prop_assert!(value < r);
        prop_assert!(value > 0);
    }

    #[test]
    fn prefixsum_is_decreasing_and_bounded(n in 1u64..1_000_000, r in 2u64..10) {
        let ps = prefixsum(n, r);
        prop_assert_eq!(ps.len() as u32, nonzero_digits(n, r).saturating_sub(1));
        for w in ps.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
        for v in &ps {
            prop_assert!(*v < n);
            prop_assert!(*v > 0);
        }
        if !ps.is_empty() {
            prop_assert_eq!(ps[0], major(n, r));
        }
    }

    #[test]
    fn fact_2_prefixsum_recurrence(n in 1u64..100_000, r in 2u64..8) {
        // prefixsum(N+1, r) ⊆ prefixsum(N, r) ∪ {N}
        let mut allowed = prefixsum(n, r);
        allowed.push(n);
        for v in prefixsum(n + 1, r) {
            prop_assert!(allowed.contains(&v));
        }
    }

    #[test]
    fn ceil_log_bounds_power(n in 1u64..1_000_000, r in 2u64..10) {
        let e = ceil_log(n, r);
        // r^e >= n and r^(e-1) < n (for n > 1).
        let pow = r.checked_pow(e).unwrap_or(u64::MAX);
        prop_assert!(pow >= n);
        if n > 1 && e > 0 {
            let lower = r.checked_pow(e - 1).unwrap_or(u64::MAX);
            prop_assert!(lower < n);
        }
    }

    // --- clustering substrate ------------------------------------------

    #[test]
    fn kmeans_cost_is_zero_iff_centers_cover_points(points in point_set_strategy()) {
        // Centers equal to every distinct point => cost 0.
        let rows: Vec<Vec<f64>> = points.iter().map(|(p, _)| p.to_vec()).collect();
        let centers = Centers::from_rows(points.dim(), &rows).unwrap();
        let cost = kmeans_cost(&points, &centers).unwrap();
        prop_assert!(cost.abs() < 1e-9);
    }

    #[test]
    fn kmeanspp_returns_requested_centers_and_finite_cost(
        points in point_set_strategy(),
        k in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = kmeanspp(&points, k, &mut rng).unwrap();
        prop_assert_eq!(centers.len(), k.min(points.len()));
        prop_assert_eq!(centers.dim(), points.dim());
        let cost = kmeans_cost(&points, &centers).unwrap();
        prop_assert!(cost.is_finite());
        prop_assert!(cost >= 0.0);
    }

    #[test]
    fn adding_a_center_never_increases_cost(
        points in point_set_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let two = kmeanspp(&points, 2, &mut rng).unwrap();
        if two.len() == 2 {
            let one = Centers::from_rows(points.dim(), &[two.center(0).to_vec()]).unwrap();
            let cost_one = kmeans_cost(&points, &one).unwrap();
            let cost_two = kmeans_cost(&points, &two).unwrap();
            prop_assert!(cost_two <= cost_one + 1e-9);
        }
    }

    // --- coresets --------------------------------------------------------

    #[test]
    fn coreset_preserves_total_weight_and_caps_size(
        points in point_set_strategy(),
        seed in 0u64..1_000,
        method_choice in 0u8..2,
    ) {
        let method = if method_choice == 0 {
            CoresetMethod::KMeansPP
        } else {
            CoresetMethod::SensitivitySampling
        };
        let size = 30usize;
        let builder = CoresetBuilder::new(3).with_size(size).with_method(method);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let coreset = builder.build(&points, Span::single(1), 1, &mut rng).unwrap();
        prop_assert!(coreset.len() <= size.max(points.len().min(size)));
        prop_assert!(coreset.len() <= points.len());
        let diff = (coreset.total_weight() - points.total_weight()).abs();
        prop_assert!(diff < 1e-6 * (1.0 + points.total_weight()));
        prop_assert_eq!(coreset.points().dim(), points.dim());
    }

    // --- streaming algorithms ------------------------------------------

    #[test]
    fn streaming_clusterers_accept_any_stream_and_answer_queries(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3),
            30..200,
        ),
        seed in 0u64..500,
    ) {
        let config = StreamConfig::new(3)
            .with_bucket_size(15)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);
        let mut cc = CachedCoresetTree::new(config, seed).unwrap();
        let mut ct = CoresetTreeClusterer::new(config, seed).unwrap();
        let mut online = OnlineCC::new(config, 1.5, seed).unwrap();
        for row in &rows {
            cc.update(row).unwrap();
            ct.update(row).unwrap();
            online.update(row).unwrap();
        }
        for (name, centers) in [
            ("CC", cc.query().unwrap()),
            ("CT", ct.query().unwrap()),
            ("OnlineCC", online.query().unwrap()),
        ] {
            prop_assert!(centers.len() <= 3, "{} returned too many centers", name);
            prop_assert!(!centers.is_empty(), "{} returned no centers", name);
            prop_assert_eq!(centers.dim(), 3);
            // All centers lie within the (slightly padded) data bounding box.
            for c in centers.iter() {
                for &x in c {
                    prop_assert!(x >= -101.0 && x <= 101.0, "{} center escaped: {}", name, x);
                }
            }
        }
        prop_assert_eq!(cc.points_seen(), rows.len() as u64);
    }

    #[test]
    fn coreset_tree_weight_equals_points_seen(
        n_points in 1usize..400,
        bucket in 5usize..40,
        seed in 0u64..500,
    ) {
        let config = StreamConfig::new(2)
            .with_bucket_size(bucket.max(2))
            .with_kmeans_runs(1)
            .with_lloyd_iterations(1);
        let mut ct = CoresetTreeClusterer::new(config, seed).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n_points {
            use rand::Rng;
            ct.update(&[rng.gen::<f64>(), rng.gen::<f64>()]).unwrap();
        }
        // Weight stored in the tree + points still in the partial buffer
        // must equal the number of points fed in (mass conservation through
        // arbitrary merge patterns).
        let tree_weight = ct.tree().stored_weight();
        let buffered = (n_points % ct.config().bucket_size) as f64;
        prop_assert!((tree_weight + buffered - n_points as f64).abs() < 1e-6);
        prop_assert!(ct.tree().digit_invariant_holds());
    }
}
